"""Persistent profile cache: hit/miss, keying, explicit invalidation."""

import json

import pytest

from repro.engine import (
    ExperimentSpec,
    ProfileCache,
    cache_key,
    key_material,
    run_experiment,
)
from repro.sim.config import MachineConfig
from repro.transform.access_phase import AccessPhaseOptions

from .tinywork import AltTinyWorkload, TinyWorkload


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def _spec(cache_dir, workload=None, **kw):
    return ExperimentSpec(
        workloads=(workload or TinyWorkload(),),
        cache=True, cache_dir=cache_dir, **kw,
    )


class TestCacheRoundTrip:
    def test_cold_then_warm(self, cache_dir):
        cold = run_experiment(_spec(cache_dir))
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == 1
        assert cold.stats.jobs_completed == 1
        assert not cold["tiny"].from_cache

        warm = run_experiment(_spec(cache_dir))
        assert warm.stats.cache_hits == 1
        assert warm.stats.jobs_completed == 0, "warm run must skip profiling"
        assert warm["tiny"].from_cache

    def test_warm_run_is_equivalent(self, cache_dir):
        cold = run_experiment(_spec(cache_dir))["tiny"]
        warm = run_experiment(_spec(cache_dir))["tiny"]
        assert warm.task_count == cold.task_count
        assert set(warm.profiles) == set(cold.profiles)
        for scheme, profile in cold.profiles.items():
            other = warm.profiles[scheme]
            assert len(other.tasks) == len(profile.tasks)
            for a, b in zip(profile.tasks, other.tasks):
                assert a.instance.name == b.instance.name
                assert a.execute.instructions == b.execute.instructions
        assert warm.compiled.affine_loops() == cold.compiled.affine_loops()
        assert warm.compiled.total_loops() == cold.compiled.total_loops()

    def test_no_cache_spec_never_touches_disk(self, cache_dir):
        result = run_experiment(ExperimentSpec(
            workloads=(TinyWorkload(),), cache=False, cache_dir=cache_dir,
        ))
        assert result.stats.cache_hits == result.stats.cache_misses == 0
        assert ProfileCache(cache_dir).stats().entries == 0


class TestCacheKeying:
    def _material(self, workload=None, scale=1, config=None, options=None):
        from repro.runtime.task import Scheme
        return key_material(
            workload or TinyWorkload(), scale, config or MachineConfig(),
            options, (Scheme.CAE, Scheme.DAE, Scheme.MANUAL),
        )

    def test_source_change_changes_key(self):
        assert cache_key(self._material()) != cache_key(
            self._material(workload=AltTinyWorkload())
        )

    def test_scale_change_changes_key(self):
        assert cache_key(self._material(scale=1)) != cache_key(
            self._material(scale=2)
        )

    def test_config_change_changes_key(self):
        from dataclasses import replace
        tweaked = replace(MachineConfig(), dvfs_transition_ns=123.0)
        assert cache_key(self._material()) != cache_key(
            self._material(config=tweaked)
        )

    def test_options_change_changes_key(self):
        tweaked = AccessPhaseOptions(hull_threshold=99)
        assert cache_key(self._material()) != cache_key(
            self._material(options=tweaked)
        )

    def test_version_is_part_of_the_key(self, monkeypatch):
        import repro
        before = cache_key(self._material())
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert cache_key(self._material()) != before

    def test_profiler_options_are_uncacheable(self):
        options = AccessPhaseOptions(profiler=lambda *a, **k: None)
        assert self._material(options=options) is None

    def test_uncacheable_job_recomputes(self, cache_dir):
        spec = _spec(cache_dir, options=AccessPhaseOptions(
            profiler=lambda *a, **k: None,
        ))
        first = run_experiment(spec)
        second = run_experiment(spec)
        assert first.stats.jobs_completed == 1
        assert second.stats.jobs_completed == 1
        assert ProfileCache(cache_dir).stats().entries == 0


class TestExplicitInvalidation:
    def test_material_mismatch_deletes_entry(self, cache_dir):
        run_experiment(_spec(cache_dir))
        cache = ProfileCache(cache_dir)
        [path] = list(cache.root.glob("*.json"))
        doc = json.loads(path.read_text())
        doc["material"]["scale"] = 777
        path.write_text(json.dumps(doc))

        warm = run_experiment(_spec(cache_dir))
        assert warm.stats.cache_hits == 0
        assert warm.stats.jobs_completed == 1

    def test_corrupt_entry_deleted_and_recomputed(self, cache_dir):
        run_experiment(_spec(cache_dir))
        cache = ProfileCache(cache_dir)
        [path] = list(cache.root.glob("*.json"))
        path.write_text("{not json")

        warm = run_experiment(_spec(cache_dir))
        assert warm.stats.cache_hits == 0
        assert warm.stats.jobs_completed == 1
        # the recompute re-stored a good entry
        assert run_experiment(_spec(cache_dir)).stats.cache_hits == 1


class TestCacheManagement:
    def test_stats_and_clear(self, cache_dir):
        cache = ProfileCache(cache_dir)
        assert cache.stats().entries == 0
        run_experiment(_spec(cache_dir))
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.total_bytes > 0
        assert cache_dir in stats.render()
        assert cache.clear() == 1
        assert cache.stats().entries == 0

    def test_env_var_overrides_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ProfileCache()
        assert str(cache.root) == str(tmp_path / "envcache")

    def test_explicit_root_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ProfileCache(str(tmp_path / "explicit"))
        assert str(cache.root) == str(tmp_path / "explicit")
