"""A minimal, fast workload for engine tests.

Module-level (not defined inside a test function) so its instances are
picklable and can travel through the process pool.
"""

from __future__ import annotations

from repro.interp.memory import SimMemory
from repro.runtime.task import TaskInstance, TaskKind
from repro.workloads.base import PaperRow, Workload, fill_floats

SOURCE = """
task tiny_scale(A: f64*, n: i64) {
  var i: i64;
  for (i = 0; i < n; i = i + 1) {
    A[i] = A[i] * 2.0;
  }
}

task tiny_scale_manual_access(A: f64*, n: i64) {
  var i: i64;
  for (i = 0; i < n; i = i + 1) {
    prefetch(A[i]);
  }
}
"""

ALT_SOURCE = SOURCE.replace("* 2.0", "* 3.0")


class TinyWorkload(Workload):
    """One affine task over a small array; profiles in milliseconds."""

    name = "tiny"
    paper = PaperRow(1, 1, 1, 0.0, 0.0)

    elems = 16
    chunks = 2

    def source(self) -> str:
        return SOURCE

    def build(self, memory: SimMemory, scale: int,
              kinds: dict[str, TaskKind]) -> list[TaskInstance]:
        n = self.elems * scale
        a = memory.alloc_array(8, n, "A", init=fill_floats(n))
        return [
            TaskInstance(kinds["tiny_scale"], [a, n])
            for _ in range(self.chunks)
        ]


class AltTinyWorkload(TinyWorkload):
    """Same name, different source — for cache-invalidation tests."""

    def source(self) -> str:
        return ALT_SOURCE
