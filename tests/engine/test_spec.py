"""ExperimentSpec validation and the EngineResult mapping facade."""

import pytest

from repro.engine import EngineResult, ExperimentSpec, run_experiment
from repro.runtime.task import Scheme
from repro.workloads import ALL_WORKLOADS

from .tinywork import TinyWorkload


class TestExperimentSpec:
    def test_defaults(self):
        spec = ExperimentSpec()
        assert spec.scale == 1
        assert spec.jobs == 1
        assert spec.cache is True
        assert spec.schemes == (Scheme.CAE, Scheme.DAE, Scheme.MANUAL)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(scale=0)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(jobs=0)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(timeout_s=0)

    def test_scheme_strings_coerced(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            spec = ExperimentSpec(schemes=("cae", "dae"))
        assert spec.schemes == (Scheme.CAE, Scheme.DAE)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(schemes=("warp",))

    def test_empty_workloads_means_all(self):
        resolved = ExperimentSpec().resolve_workloads()
        assert [w.name for w in resolved] == [w.name for w in ALL_WORKLOADS]

    def test_workload_specifier_forms(self):
        spec = ExperimentSpec(workloads=(
            TinyWorkload(), "cholesky", TinyWorkload,
        ))
        resolved = spec.resolve_workloads()
        assert [w.name for w in resolved] == ["tiny", "cholesky", "tiny"]

    def test_bad_workload_specifier_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(workloads=(42,)).resolve_workloads()


class TestStrictKwargs:
    def test_field_names_cover_the_dataclass(self):
        names = ExperimentSpec.field_names()
        assert "workloads" in names
        assert "schemes" in names
        assert "cache_dir" in names

    def test_from_kwargs_accepts_valid_fields(self):
        spec = ExperimentSpec.from_kwargs(workloads=("cg",), scale=2)
        assert spec.scale == 2

    def test_unknown_kwarg_rejected_with_field_list(self):
        from repro.engine import EngineError

        with pytest.raises(EngineError) as err:
            ExperimentSpec.from_kwargs(workloads=("cg",), scael=2)
        message = str(err.value)
        assert "'scael'" in message
        assert "valid fields" in message
        assert "scale" in message          # the list names the real knob

    def test_replace_derives_a_validated_variant(self):
        base = ExperimentSpec(workloads=("cg",), scale=1, jobs=4)
        variant = base.replace(jobs=1)
        assert variant.jobs == 1
        assert variant.scale == 1
        assert variant.workloads == base.workloads
        assert base.jobs == 4              # original untouched

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            ExperimentSpec().replace(scale=0)

    def test_replace_rejects_unknown_fields(self):
        from repro.engine import EngineError

        with pytest.raises(EngineError, match="scael"):
            ExperimentSpec().replace(scael=2)


class TestEngineResult:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(ExperimentSpec(
            workloads=(TinyWorkload(),), cache=False,
        ))

    def test_is_a_mapping(self, result):
        assert isinstance(result, EngineResult)
        assert len(result) == 1
        assert list(result) == ["tiny"]
        assert "tiny" in result
        assert result["tiny"].workload.name == "tiny"
        assert dict(result) == {"tiny": result["tiny"]}

    def test_legacy_dict_idioms_work(self, result):
        assert [name for name, run in result.items()] == ["tiny"]
        assert result.get("missing") is None

    def test_stats_attached(self, result):
        assert result.stats.jobs_completed == 1
        assert result.stats.elapsed_s > 0
        as_dict = result.stats.as_dict()
        assert as_dict["jobs_completed"] == 1
