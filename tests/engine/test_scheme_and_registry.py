"""The typed Scheme enum, the policy registry, and their string shims."""

import warnings

import pytest

from repro import deprecation
from repro.power.frequency import (
    FixedPolicy,
    FrequencyPolicy,
    MinMaxPolicy,
    OptimalEDPPolicy,
)
from repro.runtime.task import Scheme
from repro.sim.config import MachineConfig


@pytest.fixture(autouse=True)
def fresh_warnings():
    deprecation.reset()
    yield
    deprecation.reset()


class TestScheme:
    def test_members_compare_equal_to_strings(self):
        assert Scheme.CAE == "cae"
        assert Scheme.DAE == "dae"
        assert Scheme.MANUAL == "manual"
        assert Scheme.DAE.value == "dae"

    def test_coerce_passthrough_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert Scheme.coerce(Scheme.DAE) is Scheme.DAE

    def test_coerce_string_warns_once_per_context(self):
        with pytest.deprecated_call():
            assert Scheme.coerce("dae", context="ctx-a") is Scheme.DAE
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call: no warning
            assert Scheme.coerce("CAE", context="ctx-a") is Scheme.CAE
        with pytest.deprecated_call():  # new context warns again
            Scheme.coerce("dae", context="ctx-b")

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                Scheme.coerce("warp")


class TestPolicyRegistry:
    def test_builtin_names(self):
        names = FrequencyPolicy.registered_names()
        for name in ("minmax", "optimal", "fmax", "fmin"):
            assert name in names

    def test_from_name_builtins(self):
        config = MachineConfig()
        assert isinstance(
            FrequencyPolicy.from_name("minmax", config), MinMaxPolicy
        )
        assert isinstance(
            FrequencyPolicy.from_name("optimal", config), OptimalEDPPolicy
        )
        fmax = FrequencyPolicy.from_name("fmax", config)
        assert isinstance(fmax, FixedPolicy)
        assert fmax.point == config.fmax
        fmin = FrequencyPolicy.from_name("FMIN", config)
        assert fmin.point == config.fmin

    def test_from_name_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            FrequencyPolicy.from_name("turbo")

    def test_register_custom_policy(self):
        class NullPolicy(FrequencyPolicy):
            def __init__(self, config):
                self.config = config

            def access_point(self, profile, config):
                return config.fmin

            def execute_point(self, profile, config):
                return config.fmin

        FrequencyPolicy.register("nullp", NullPolicy)
        try:
            policy = FrequencyPolicy.from_name("nullp", MachineConfig())
            assert isinstance(policy, NullPolicy)
        finally:
            from repro.power import frequency
            frequency._POLICY_REGISTRY.pop("nullp", None)


class TestEvaluationShims:
    def test_schedule_accepts_strings_with_deprecation(self):
        from repro.evaluation.experiments import run_workload, schedule
        from repro.workloads import workload_by_name

        run = run_workload(workload_by_name("cigar"))
        config = MachineConfig()
        with pytest.deprecated_call():
            legacy = schedule(run, "dae", "optimal", config)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            typed = schedule(
                run, Scheme.DAE,
                FrequencyPolicy.from_name("optimal", config), config,
            )
        assert legacy.summary() == typed.summary()
