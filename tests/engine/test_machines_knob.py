"""The spec/cache/service plumbing for the ``machine`` knob."""

import pytest

from repro.engine.cache import cache_key, key_material
from repro.engine.products import EngineError
from repro.engine.spec import ExperimentSpec
from repro.machines import biglittle_machine
from repro.service.protocol import (
    job_key,
    spec_from_doc,
    spec_to_doc,
    tune_from_doc,
)
from repro.sim import MachineConfig

from .tinywork import TinyWorkload


class TestSpecKnob:
    def test_machine_name_is_lowercased_and_resolved(self):
        spec = ExperimentSpec(machine="BigLittle")
        assert spec.machine == "biglittle"
        assert spec.resolve_machine().name == "biglittle"

    def test_no_machine_resolves_to_none(self):
        assert ExperimentSpec().resolve_machine() is None

    def test_unknown_machine_raises_engine_error(self):
        with pytest.raises(EngineError, match="registered"):
            ExperimentSpec(machine="cray1")

    def test_replace_revalidates_machine(self):
        spec = ExperimentSpec()
        with pytest.raises(EngineError, match="registered"):
            spec.replace(machine="cray1")


class TestCacheKey:
    def _material(self, machine=None):
        return key_material(
            TinyWorkload(), 1, MachineConfig(), None, ("cae", "dae"),
            machine=machine,
        )

    def test_machine_enters_material_only_when_set(self):
        plain = self._material()
        machined = self._material(machine=biglittle_machine())
        assert "machine" not in plain
        assert machined["machine"]["name"] == "biglittle"
        assert machined["machine"]["transition"]["kind"] == "migrate"

    def test_machine_changes_the_cache_key(self):
        plain = self._material()
        machined = self._material(machine=biglittle_machine())
        assert cache_key(plain) != cache_key(machined)


class TestWireProtocol:
    def test_spec_doc_round_trips_machine(self):
        spec = ExperimentSpec(workloads=("cg",), machine="biglittle")
        doc = spec_to_doc(spec)
        assert doc["machine"] == "biglittle"
        assert spec_from_doc(doc).machine == "biglittle"

    def test_machine_less_doc_round_trips_to_none(self):
        doc = spec_to_doc(ExperimentSpec(workloads=("cg",)))
        assert doc["machine"] is None
        assert spec_from_doc(doc).machine is None

    def test_experiment_job_keys_differ_by_machine(self):
        plain = spec_to_doc(ExperimentSpec(workloads=("cg",)))
        machined = spec_to_doc(
            ExperimentSpec(workloads=("cg",), machine="biglittle")
        )
        assert (job_key("experiment", plain)
                != job_key("experiment", machined))

    def test_tune_doc_accepts_and_keys_machine(self):
        doc = {"workload": "cg", "machine": "biglittle"}
        assert tune_from_doc(doc)["machine"] == "biglittle"
        assert (job_key("tune", {"workload": "cg"})
                != job_key("tune", doc))
