"""Engine execution strategies: pool fan-out, fallback, determinism, obs."""

import pytest

from repro import obs
from repro.engine import (
    ExperimentSpec,
    run_experiment,
    run_to_payload,
)
from repro.engine import pool as pool_module

from .tinywork import TinyWorkload


def _spec(**kw):
    kw.setdefault("workloads", (TinyWorkload(),))
    kw.setdefault("cache", False)
    return ExperimentSpec(**kw)


def _crashing_worker(payload):
    raise RuntimeError("simulated worker crash")


class TestSerialParallelEquivalence:
    def test_payloads_identical(self):
        """`--jobs N` must be byte-identical to `--jobs 1`.

        On platforms where the pool cannot start, the parallel spec
        degrades to the serial path — the equality below then holds
        trivially, which is exactly the contract.
        """
        serial = run_experiment(_spec(jobs=1))
        parallel = run_experiment(_spec(jobs=2, workloads=(
            TinyWorkload(), TinyWorkload(),
        )))
        assert run_to_payload(serial["tiny"]) == run_to_payload(
            parallel["tiny"]
        )

    def test_deterministic_spec_ordering(self):
        result = run_experiment(ExperimentSpec(
            workloads=("cholesky", "cg"), scale=1, jobs=1, cache=False,
        ))
        assert list(result) == ["cholesky", "cg"]


class TestFallback:
    def test_pool_creation_failure_degrades_to_serial(self, monkeypatch):
        def broken_executor(*a, **k):
            raise OSError("no forking here")
        monkeypatch.setattr(
            pool_module, "ProcessPoolExecutor", broken_executor
        )
        result = run_experiment(_spec(
            jobs=4, workloads=(TinyWorkload(), TinyWorkload()),
        ))
        assert result.stats.fallbacks == 2
        assert result.stats.serial_jobs == 2
        assert result.stats.parallel_jobs == 0
        assert result["tiny"].task_count == TinyWorkload.chunks

    def test_worker_crash_retries_then_falls_back(self, monkeypatch):
        monkeypatch.setattr(pool_module, "_pool_worker", _crashing_worker)
        result = run_experiment(_spec(
            jobs=2, workloads=(TinyWorkload(), TinyWorkload()),
        ))
        # Both jobs completed despite every pool attempt crashing.
        assert result.stats.jobs_completed == 2
        assert result.stats.parallel_jobs == 0
        assert result.stats.serial_jobs == 2
        assert result.stats.fallbacks == 2
        assert result.stats.retries >= 1
        run = result["tiny"]
        assert set(run.profiles) == {"cae", "dae", "manual"}

    def test_single_pending_job_runs_serially(self):
        result = run_experiment(_spec(jobs=8))
        assert result.stats.parallel_jobs == 0
        assert result.stats.serial_jobs == 1


class TestObservability:
    def test_cache_hit_counter_proves_warm_skip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiment(_spec(cache=True, cache_dir=cache_dir))

        collector = obs.Collector(enabled=True)
        with obs.collecting(collector):
            warm = run_experiment(_spec(cache=True, cache_dir=cache_dir))
        assert warm.stats.jobs_completed == 0

        hits = collector.select(name="engine.cache.hit")
        assert len(hits) == 1
        assert hits[0].args["workload"] == "tiny"
        scheduled = collector.select(name="engine.job.scheduled")
        assert scheduled == []
        counters = {
            e.name: e.value
            for e in collector.events() if e.kind == "counter"
        }
        assert counters["engine.cache_hits"] == 1
        assert counters["engine.jobs_completed"] == 0

    def test_run_span_carries_stats(self):
        collector = obs.Collector(enabled=True)
        with obs.collecting(collector):
            run_experiment(_spec())
        [span] = [
            e for e in collector.events()
            if e.name == "engine.run" and e.kind == "span"
        ]
        assert span.args["jobs_completed"] == 1
        assert span.args["cache"] is False


class TestTaskCountConsistency:
    def test_cross_scheme_mismatch_raises(self, monkeypatch):
        from repro.engine.products import EngineError, profile_workload

        workload = TinyWorkload()
        original_build = TinyWorkload.build
        counts = iter([1, 2, 2])

        def unstable_build(self, memory, scale, kinds):
            instances = original_build(self, memory, scale, kinds)
            return instances[: next(counts)]

        monkeypatch.setattr(TinyWorkload, "build", unstable_build)
        with pytest.raises(EngineError, match="deterministic across schemes"):
            profile_workload(workload)
