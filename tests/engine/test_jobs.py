"""Asynchronous engine runs: handles, cancellation, the reusable pool."""

import threading

import pytest

from repro.engine import (
    CancelToken,
    EngineJobHandle,
    EnginePool,
    ExperimentSpec,
    JobCancelled,
    run_experiment,
    submit_experiment,
)

from .tinywork import TinyWorkload


def _spec(**kw):
    kw.setdefault("workloads", (TinyWorkload(),))
    kw.setdefault("cache", False)
    return ExperimentSpec(**kw)


class TestCancelToken:
    def test_starts_uncancelled(self):
        token = CancelToken()
        assert not token.cancelled
        token.raise_if_cancelled()          # no-op while clear

    def test_raises_with_context_after_cancel(self):
        token = CancelToken()
        token.cancel()
        assert token.cancelled
        with pytest.raises(JobCancelled, match="probing cg"):
            token.raise_if_cancelled("probing cg")

    def test_pre_cancelled_token_aborts_the_run(self):
        token = CancelToken()
        token.cancel()
        with pytest.raises(JobCancelled):
            run_experiment(_spec(), cancel=token)

    def test_cancel_between_workloads_keeps_nothing(self):
        """The engine checks the token before each workload probe."""
        token = CancelToken()
        original_build = TinyWorkload.build

        def cancelling_build(self, memory, scale, kinds):
            token.cancel()                  # fires mid-run
            return original_build(self, memory, scale, kinds)

        workloads = (TinyWorkload(), TinyWorkload())
        try:
            TinyWorkload.build = cancelling_build
            with pytest.raises(JobCancelled):
                run_experiment(_spec(workloads=workloads), cancel=token)
        finally:
            TinyWorkload.build = original_build


class TestSubmitExperiment:
    def test_handle_resolves_to_a_normal_result(self):
        handle = submit_experiment(_spec())
        assert isinstance(handle, EngineJobHandle)
        result = handle.result(timeout=60.0)
        assert result["tiny"].task_count == TinyWorkload.chunks
        assert handle.done()
        assert handle.exception() is None

    def test_cancel_running_job_is_cooperative(self):
        gate = threading.Event()
        original_build = TinyWorkload.build

        def gated_build(self, memory, scale, kinds):
            gate.set()                       # the job is now mid-run
            return original_build(self, memory, scale, kinds)

        workloads = tuple(TinyWorkload() for _ in range(6))
        try:
            TinyWorkload.build = gated_build
            handle = submit_experiment(_spec(workloads=workloads))
            assert gate.wait(timeout=30.0)
            handle.cancel()
            with pytest.raises(JobCancelled):
                handle.result(timeout=60.0)
        finally:
            TinyWorkload.build = original_build

    def test_job_ids_are_unique(self):
        first = submit_experiment(_spec())
        second = submit_experiment(_spec())
        assert first.job_id != second.job_id
        first.result(timeout=60.0)
        second.result(timeout=60.0)


class TestEnginePool:
    def test_executor_is_lazy_and_reused(self):
        pool = EnginePool(max_workers=2)
        assert not pool.healthy
        assert pool.created == 0
        first = pool.executor()
        assert pool.healthy
        assert pool.created == 1
        assert pool.executor() is first     # reused, not recreated
        assert pool.created == 1
        pool.shutdown()
        assert not pool.healthy

    def test_mark_broken_forces_recreation(self):
        pool = EnginePool(max_workers=2)
        first = pool.executor()
        pool.mark_broken()
        assert pool.broken == 1
        assert not pool.healthy
        second = pool.executor()
        assert second is not first
        assert pool.created == 2
        pool.shutdown()

    def test_run_experiment_on_a_shared_pool(self):
        pool = EnginePool(max_workers=2)
        try:
            spec = _spec(jobs=2, workloads=(TinyWorkload(), TinyWorkload()))
            first = run_experiment(spec, pool=pool)
            created_after_first = pool.created
            second = run_experiment(spec, pool=pool)
            assert first["tiny"].task_count == TinyWorkload.chunks
            assert second["tiny"].task_count == TinyWorkload.chunks
            # The second run reused the first run's worker processes.
            assert pool.created == created_after_first <= 1
        finally:
            pool.shutdown()
