"""big.LITTLE DAE end-to-end: every paper workload profiles and
schedules on the migration-based machine with access phases on the
LITTLE cluster and audited migration charges."""

import pytest

from repro.engine.products import profile_workload
from repro.machines import biglittle_machine, little_config
from repro.power.frequency import FrequencyPolicy
from repro.runtime import DAEScheduler
from repro.runtime.task import Scheme
from repro.sim import MachineConfig
from repro.workloads import ALL_WORKLOADS

LITTLE_FMAX = little_config().fmax.freq_ghz
BIG_FREQS = {p.freq_ghz for p in MachineConfig().operating_points}
LITTLE_FREQS = {p.freq_ghz for p in little_config().operating_points}


@pytest.mark.parametrize(
    "workload_cls", ALL_WORKLOADS, ids=[w.name for w in ALL_WORKLOADS],
)
def test_dae_completes_on_every_workload(workload_cls):
    machine = biglittle_machine()
    run = profile_workload(
        workload_cls(), 1, machine=machine, schemes=(Scheme.DAE,),
    )
    policy = FrequencyPolicy.from_name("optimal", machine.config)
    result = DAEScheduler(machine=machine).run(
        run.profiles["dae"].tasks, "dae", policy, record_timeline=True,
    )

    assert result.tasks_run == run.task_count
    assert result.machine == "biglittle"
    assert result.placement == {"access": "little", "execute": "big"}
    assert result.migrations > 0
    assert result.transition_nj > 0.0

    # The roll-ups stay exact with migration charges in the mix.
    result.timeline.validate(result.time_ns)
    result.timeline.validate_energy(result.energy_nj)

    segments = [
        segment
        for core_segments in result.timeline.per_core().values()
        for segment in core_segments
    ]
    access = [s for s in segments if s.kind == "access"]
    assert access, "DAE run recorded no access segments"
    # Every access phase runs on a real table point of one of the two
    # clusters; at least one lands on the LITTLE table (the cold slot
    # places the first access phase there unconditionally).
    for segment in access:
        assert segment.freq_ghz in BIG_FREQS | LITTLE_FREQS
    assert any(s.freq_ghz <= LITTLE_FMAX + 1e-9 for s in access)
    # Cluster crossings surface as switch segments.
    assert any(s.kind == "switch" for s in segments)


def test_migration_summary_keys_are_present():
    machine = biglittle_machine()
    run = profile_workload(
        ALL_WORKLOADS[0](), 1, machine=machine, schemes=(Scheme.DAE,),
    )
    policy = FrequencyPolicy.from_name("optimal", machine.config)
    result = DAEScheduler(machine=machine).run(
        run.profiles["dae"].tasks, "dae", policy,
    )
    summary = result.summary()
    assert summary["machine"] == "biglittle"
    assert summary["migrations"] == result.migrations > 0
    assert summary["placement"] == {"access": "little", "execute": "big"}
