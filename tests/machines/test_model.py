"""MachineModel: registry, validation, placement and slot shape."""

import dataclasses

import pytest

from repro.machines import (
    BIGLITTLE_MIGRATION_NS,
    CoreType,
    MachineModel,
    Transition,
    biglittle_machine,
    dvfs,
    homogeneous_machine,
    ideal_machine,
    little_config,
    migrate,
    sandybridge_machine,
)
from repro.sim.config import CacheConfig, MachineConfig, MachineConfigError


def two_type_machine(**overrides):
    """A valid biglittle-shaped machine to mutate into broken ones."""
    fields = dict(
        name="m",
        description="test machine",
        core_types=(
            CoreType(name="big", count=4, config=MachineConfig()),
            CoreType(name="little", count=4, config=little_config()),
        ),
        transition=migrate(2000.0),
        access_type="little",
        execute_type="big",
    )
    fields.update(overrides)
    return MachineModel(**fields)


class TestRegistry:
    def test_builtin_names_are_registered(self):
        names = MachineModel.registered_names()
        assert {"sandybridge", "biglittle", "ideal"} <= set(names)
        assert list(names) == sorted(names)

    def test_from_name_is_case_insensitive(self):
        assert MachineModel.from_name("SandyBridge").name == "sandybridge"
        assert MachineModel.from_name("BIGLITTLE").name == "biglittle"

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(KeyError, match="registered"):
            MachineModel.from_name("cray1")

    def test_register_overwrites_existing_name(self):
        from repro.machines.model import _MACHINE_REGISTRY

        try:
            MachineModel.register("tmp-test", sandybridge_machine)
            MachineModel.register("tmp-test", ideal_machine)
            assert MachineModel.from_name("tmp-test").name == "ideal"
        finally:
            _MACHINE_REGISTRY.pop("tmp-test", None)


class TestShape:
    def test_sandybridge_is_homogeneous_default(self):
        machine = sandybridge_machine()
        assert not machine.heterogeneous
        assert machine.config == MachineConfig()
        access, execute = machine.placement("dae")
        assert access.name == execute.name == "core"
        assert machine.slots("dae") == MachineConfig().cores

    def test_homogeneous_wrapper_autofills_placement(self):
        machine = homogeneous_machine("solo", MachineConfig())
        assert machine.access_type == machine.execute_type == "core"
        assert not machine.heterogeneous

    def test_biglittle_places_access_on_little(self):
        machine = biglittle_machine()
        assert machine.heterogeneous
        assert machine.config == MachineConfig()  # execute anchors
        for scheme in ("dae", "manual"):
            access, execute = machine.placement(scheme)
            assert (access.name, execute.name) == ("little", "big")
        access, execute = machine.placement("cae")
        assert (access.name, execute.name) == ("big", "big")

    def test_placement_override(self):
        machine = biglittle_machine()
        access, execute = machine.placement("dae", ("big", "big"))
        assert (access.name, execute.name) == ("big", "big")

    def test_slots_pair_the_smallest_placed_cluster(self):
        machine = biglittle_machine()
        assert machine.slots("dae") == 4
        assert machine.slots("cae") == 4
        wide_little = dataclasses.replace(little_config(), cores=8)
        lopsided = two_type_machine(core_types=(
            CoreType(name="big", count=4, config=MachineConfig()),
            CoreType(name="little", count=8, config=wide_little),
        )).validate()
        assert lopsided.slots("dae") == 4
        assert lopsided.slots("cae") == 4

    def test_equal_configs_collapse_to_homogeneous(self):
        config = MachineConfig()
        degenerate = two_type_machine(core_types=(
            CoreType(name="big", count=4, config=config),
            CoreType(name="little", count=4, config=config),
        )).validate()
        assert not degenerate.heterogeneous

    def test_type_named_unknown_raises(self):
        with pytest.raises(KeyError, match="no core type"):
            biglittle_machine().type_named("medium")


class TestValidation:
    def test_validate_returns_self(self):
        machine = two_type_machine()
        assert machine.validate() is machine

    def test_no_core_types(self):
        with pytest.raises(MachineConfigError, match="no core types"):
            two_type_machine(core_types=()).validate()

    def test_duplicate_type_names(self):
        with pytest.raises(MachineConfigError, match="twice"):
            two_type_machine(core_types=(
                CoreType(name="big", count=4, config=MachineConfig()),
                CoreType(name="big", count=4, config=MachineConfig()),
            )).validate()

    def test_cluster_count_must_be_positive(self):
        with pytest.raises(MachineConfigError, match="count >= 1"):
            two_type_machine(core_types=(
                CoreType(name="big", count=0, config=MachineConfig()),
                CoreType(name="little", count=4, config=little_config()),
            )).validate()

    def test_config_cores_must_match_cluster_count(self):
        with pytest.raises(MachineConfigError, match="config.cores"):
            two_type_machine(core_types=(
                CoreType(name="big", count=2, config=MachineConfig()),
                CoreType(name="little", count=4, config=little_config()),
            )).validate()

    def test_invalid_nested_config_surfaces(self):
        bad = dataclasses.replace(MachineConfig(), issue_width=0)
        with pytest.raises(MachineConfigError, match="issue_width"):
            two_type_machine(core_types=(
                CoreType(name="big", count=4, config=bad),
                CoreType(name="little", count=4, config=little_config()),
            )).validate()

    def test_unknown_placement_type(self):
        with pytest.raises(MachineConfigError, match="unknown core type"):
            two_type_machine(access_type="medium").validate()

    def test_unknown_transition_kind(self):
        bad = Transition(kind="teleport", latency_ns=0.0)
        with pytest.raises(MachineConfigError, match="transition kind"):
            two_type_machine(transition=bad).validate()

    def test_negative_transition_latency(self):
        with pytest.raises(MachineConfigError, match=">= 0"):
            two_type_machine(transition=migrate(-1.0)).validate()

    def test_dvfs_cannot_span_distinct_types(self):
        with pytest.raises(MachineConfigError, match="must migrate"):
            two_type_machine(transition=dvfs(500.0)).validate()

    def test_dvfs_latency_must_match_the_config(self):
        with pytest.raises(MachineConfigError, match="disagrees"):
            MachineModel(
                name="m",
                description="latency mismatch",
                core_types=(
                    CoreType(name="core", count=4, config=MachineConfig()),
                ),
                transition=dvfs(100.0),
                access_type="core",
                execute_type="core",
            ).validate()

    def test_placed_types_must_share_the_llc(self):
        split_llc = dataclasses.replace(
            little_config(),
            llc=CacheConfig(48 * 1024, 16, latency_cycles=30),
        )
        with pytest.raises(MachineConfigError, match="share one LLC"):
            two_type_machine(core_types=(
                CoreType(name="big", count=4, config=MachineConfig()),
                CoreType(name="little", count=4, config=split_llc),
            )).validate()


class TestCatalog:
    def test_biglittle_migrates_with_flush(self):
        machine = biglittle_machine()
        assert machine.transition.kind == "migrate"
        assert machine.transition.latency_ns == BIGLITTLE_MIGRATION_NS
        assert machine.transition.flush is True

    def test_little_cluster_shares_the_default_llc(self):
        assert little_config().llc == MachineConfig().llc

    def test_little_table_sits_below_the_big_table(self):
        little = little_config()
        assert little.fmax.freq_ghz < MachineConfig().fmin.freq_ghz
        assert little.fmax.freq_ghz == 1.4

    def test_ideal_machine_has_free_transitions(self):
        machine = ideal_machine()
        assert machine.transition.latency_ns == 0.0
        assert machine.config.dvfs_transition_ns == 0.0
        assert not machine.heterogeneous
