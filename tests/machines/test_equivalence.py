"""The pinned collapse rule: ``sandybridge`` (and every machine whose
placed types are behaviourally identical) reproduces the plain
homogeneous paths bit-for-bit — scheduler summaries, serialized
profiling payloads, and replayed streams."""

import json

import pytest

from repro.engine.pool import run_experiment
from repro.engine.products import phase_to_dict, profile_workload, run_to_payload
from repro.engine.spec import ExperimentSpec
from repro.interp.trace import TraceStore
from repro.machines import (
    CoreType,
    MachineModel,
    ideal_machine,
    migrate,
    sandybridge_machine,
)
from repro.machines.replay import machine_stream
from repro.power.frequency import FrequencyPolicy
from repro.runtime import DAEScheduler, TaskProfile
from repro.runtime.profiler import replay_stream
from repro.runtime.task import TaskInstance, TaskKind
from repro.sim import AccessCounts, MachineConfig, PhaseProfile

from ..engine.tinywork import TinyWorkload

SCHEMES = ("cae", "dae", "manual")
POLICIES = ("fmax", "minmax", "optimal")


def _profile(slots, mem=0, pf_mem=0):
    counts = AccessCounts()
    counts.loads["mem"] = mem
    counts.prefetches["mem"] = pf_mem
    return PhaseProfile(instructions=slots, slots=slots, counts=counts)


def _tasks(n=10):
    kind = TaskKind(name="k", execute=None)
    return [
        TaskProfile(
            instance=TaskInstance(kind, []),
            execute=_profile(slots=40_000, mem=60),
            access=_profile(slots=4_000, pf_mem=200),
        )
        for _ in range(n)
    ]


def _degenerate(config):
    return MachineModel(
        name="degenerate",
        description="two behaviourally identical clusters",
        core_types=(
            CoreType(name="big", count=config.cores, config=config),
            CoreType(name="little", count=config.cores, config=config),
        ),
        transition=migrate(2000.0, flush=True),
        access_type="little",
        execute_type="big",
    ).validate()


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_sandybridge_matches_plain_config(self, scheme, policy_name):
        config = MachineConfig()
        tasks = _tasks()
        plain = DAEScheduler(config).run(
            tasks, scheme, FrequencyPolicy.from_name(policy_name, config),
        )
        machined = DAEScheduler(machine=sandybridge_machine()).run(
            tasks, scheme, FrequencyPolicy.from_name(policy_name, config),
        )
        assert machined.summary() == plain.summary()

    def test_homogeneous_summary_has_no_machine_keys(self):
        config = MachineConfig()
        result = DAEScheduler(machine=sandybridge_machine()).run(
            _tasks(), "dae", FrequencyPolicy.from_name("optimal", config),
        )
        summary = result.summary()
        assert "machine" not in summary
        assert "migrations" not in summary
        assert "placement" not in summary

    def test_degenerate_migration_machine_collapses(self):
        config = MachineConfig()
        tasks = _tasks()
        plain = DAEScheduler(config).run(
            tasks, "dae", FrequencyPolicy.from_name("optimal", config),
        )
        degenerate = DAEScheduler(machine=_degenerate(config)).run(
            tasks, "dae", FrequencyPolicy.from_name("optimal", config),
        )
        assert degenerate.summary() == plain.summary()
        assert degenerate.migrations == 0

    def test_ideal_matches_zero_latency_config(self):
        config = MachineConfig(dvfs_transition_ns=0.0)
        tasks = _tasks()
        plain = DAEScheduler(config).run(
            tasks, "dae", FrequencyPolicy.from_name("minmax", config),
        )
        machined = DAEScheduler(machine=ideal_machine()).run(
            tasks, "dae", FrequencyPolicy.from_name("minmax", config),
        )
        assert machined.summary() == plain.summary()

    def test_config_and_machine_together_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            DAEScheduler(MachineConfig(), machine=sandybridge_machine())

    def test_placement_requires_a_machine(self):
        with pytest.raises(ValueError, match="requires a machine"):
            DAEScheduler(placement=("little", "big"))


class TestProfilingEquivalence:
    def test_payloads_are_byte_identical(self):
        plain = run_to_payload(profile_workload(TinyWorkload(), 1))
        machined = run_to_payload(profile_workload(
            TinyWorkload(), 1, machine=sandybridge_machine(),
        ))
        assert (json.dumps(plain, sort_keys=True)
                == json.dumps(machined, sort_keys=True))

    def test_run_experiment_machine_knob_is_transparent(self):
        base = ExperimentSpec(workloads=(TinyWorkload(),), cache=False)
        plain = run_experiment(base)
        machined = run_experiment(base.replace(machine="sandybridge"))
        assert (json.dumps(run_to_payload(plain["tiny"]), sort_keys=True)
                == json.dumps(run_to_payload(machined["tiny"]),
                              sort_keys=True))

    def test_degenerate_machine_stream_matches_replay_stream(self):
        config = MachineConfig()
        store = TraceStore()
        profile_workload(
            TinyWorkload(), 1, config, schemes=SCHEMES,
            interp="replay", trace_store=store,
        )
        assert store.fully_replayable()
        degenerate = _degenerate(config)
        for scheme in SCHEMES:
            via_machine = machine_stream(
                store.schemes[scheme], scheme, degenerate,
            )
            via_replay = replay_stream(
                store.schemes[scheme], scheme, config,
            )
            assert len(via_machine.tasks) == len(via_replay.tasks)
            for left, right in zip(via_machine.tasks, via_replay.tasks):
                assert phase_to_dict(left.execute) == phase_to_dict(
                    right.execute)
                if left.access is None:
                    assert right.access is None
                else:
                    assert phase_to_dict(left.access) == phase_to_dict(
                        right.access)
