"""Parser tests: declaration/statement/expression structure."""

import pytest

from repro.frontend import ParseError, parse
from repro.frontend import ast


def parse_task_body(body: str):
    program = parse("task t(A: f64*, n: i64) { %s }" % body)
    return program.functions[0].body


class TestDeclarations:
    def test_task_and_func_flags(self):
        program = parse("func f(x: i64) -> i64 { return x; } task t() { }")
        assert not program.functions[0].is_task
        assert program.functions[1].is_task

    def test_params_parsed_with_types(self):
        program = parse("task t(A: f64*, n: i64, B: i64**) { }")
        params = program.functions[0].params
        assert [p.name for p in params] == ["A", "n", "B"]
        assert params[0].type.pointer_depth == 1
        assert params[2].type.pointer_depth == 2

    def test_return_type_optional(self):
        program = parse("func f() { return; }")
        assert program.functions[0].return_type is None

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            parse("task t(x: banana) { }")


class TestStatements:
    def test_var_decl_with_init(self):
        (stmt,) = parse_task_body("var x: i64 = 3;")
        assert isinstance(stmt, ast.VarDecl)
        assert isinstance(stmt.init, ast.IntLiteral)

    def test_for_loop_components(self):
        (stmt,) = parse_task_body("for (n = 0; n < 10; n = n + 1) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Assign)
        assert isinstance(stmt.cond, ast.BinaryExpr)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_loop_parts_optional(self):
        (stmt,) = parse_task_body("for (;;) { }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while_loop(self):
        (stmt,) = parse_task_body("while (n > 0) { n = n - 1; }")
        assert isinstance(stmt, ast.While)
        assert len(stmt.body) == 1

    def test_if_else_chain(self):
        (stmt,) = parse_task_body(
            "if (n == 0) { } else if (n == 1) { } else { n = 2; }"
        )
        assert isinstance(stmt, ast.If)
        nested = stmt.else_body[0]
        assert isinstance(nested, ast.If)
        assert len(nested.else_body) == 1

    def test_prefetch_statement(self):
        (stmt,) = parse_task_body("prefetch(A[n]);")
        assert isinstance(stmt, ast.PrefetchStmt)
        assert isinstance(stmt.address, ast.IndexExpr)

    def test_array_store(self):
        (stmt,) = parse_task_body("A[n] = 1.5;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.IndexExpr)

    def test_invalid_assignment_target_rejected(self):
        with pytest.raises(ParseError):
            parse_task_body("1 = 2;")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_task_body("n = 1")


class TestExpressions:
    def expr(self, text):
        (stmt,) = parse_task_body("n = %s;" % text)
        return stmt.value

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.rhs.op == "*"

    def test_precedence_add_over_compare(self):
        e = self.expr("n + 1 < 10")
        assert e.op == "<"
        assert e.lhs.op == "+"

    def test_bitand_binds_tighter_than_compare(self):
        e = self.expr("n & 1 == 1")
        assert e.op == "=="
        assert e.lhs.op == "&"

    def test_logical_and_or(self):
        e = self.expr("n > 0 && n < 5 || n == 9")
        assert e.op == "||"
        assert e.lhs.op == "&&"

    def test_unary_minus_and_not(self):
        e = self.expr("-n")
        assert isinstance(e, ast.UnaryExpr) and e.op == "-"
        e = self.expr("!(n == 1)")
        assert isinstance(e, ast.UnaryExpr) and e.op == "!"

    def test_nested_indexing(self):
        e = self.expr("A[A[n]]")
        assert isinstance(e, ast.IndexExpr)
        assert isinstance(e.index, ast.IndexExpr)

    def test_call_with_args(self):
        program = parse(
            "func f(x: i64) -> i64 { return x; }"
            "task t(n: i64) { var y: i64 = f(n + 1); }"
        )
        init = program.functions[1].body[0].init
        assert isinstance(init, ast.CallExpr)
        assert init.callee == "f"
        assert len(init.args) == 1

    def test_cast_expression(self):
        e = self.expr("(f64) n" )
        assert isinstance(e, ast.CastExpr)
        assert e.target.name == "f64"

    def test_parenthesized_expression(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.lhs.op == "+"

    def test_unexpected_token_reports_line(self):
        with pytest.raises(ParseError) as err:
            parse("task t() {\n  n = ;\n}")
        assert "line 2" in str(err.value)
