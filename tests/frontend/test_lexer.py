"""Tokenizer tests."""

import pytest

from repro.frontend.lexer import LexError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_yields_eof_only(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        assert kinds("task foo var") == [
            ("keyword", "task"), ("ident", "foo"), ("keyword", "var"),
        ]

    def test_integer_literal(self):
        assert kinds("42") == [("int", "42")]

    def test_float_literals(self):
        assert kinds("3.5 1e3 2.5e-2") == [
            ("float", "3.5"), ("float", "1e3"), ("float", "2.5e-2"),
        ]

    def test_multichar_punctuation_wins(self):
        assert kinds("<= == -> &&") == [
            ("punct", "<="), ("punct", "=="), ("punct", "->"), ("punct", "&&"),
        ]

    def test_adjacent_punct_split_correctly(self):
        assert kinds("a<=b") == [
            ("ident", "a"), ("punct", "<="), ("ident", "b"),
        ]

    def test_underscore_identifiers(self):
        assert kinds("_x x_1") == [("ident", "_x"), ("ident", "x_1")]


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* forever")


class TestLineNumbers:
    def test_lines_tracked_across_newlines(self):
        tokens = tokenize("a\nb\n\nc")
        lines = {t.text: t.line for t in tokens if t.kind == "ident"}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_block_comment_advances_lines(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2


class TestErrors:
    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_malformed_number_raises(self):
        with pytest.raises(LexError):
            tokenize("1.2.3")
