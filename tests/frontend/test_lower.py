"""Lowering tests: AST to verified IR, via interpretation for semantics."""

import pytest

from repro.frontend import LoweringError, compile_source
from repro.interp import Interpreter, SimMemory
from repro.ir import Load, Store, verify_function
from repro.transform import optimize_function


def run_function(source, name, args, setup=None):
    module = compile_source(source)
    func = module.function(name)
    verify_function(func)
    memory = SimMemory()
    env_args = setup(memory) if setup else args
    trace = Interpreter(memory).run(func, env_args)
    return trace, memory


class TestScalarSemantics:
    def test_arithmetic_and_return(self):
        src = "func f(a: i64, b: i64) -> i64 { return a * b + 2; }"
        trace, _ = run_function(src, "f", [6, 7])
        assert trace.return_value == 44

    def test_division_truncates_toward_zero(self):
        src = "func f(a: i64, b: i64) -> i64 { return a / b; }"
        assert run_function(src, "f", [7, 2])[0].return_value == 3
        assert run_function(src, "f", [-7, 2])[0].return_value == -3

    def test_modulo(self):
        src = "func f(a: i64, b: i64) -> i64 { return a % b; }"
        assert run_function(src, "f", [7, 3])[0].return_value == 1

    def test_mixed_int_float_promotes(self):
        src = "func f(a: i64) -> f64 { return a + 0.5; }"
        assert run_function(src, "f", [2])[0].return_value == 2.5

    def test_unary_not(self):
        src = "func f(a: i64) -> i64 { if (!(a == 3)) { return 1; } return 0; }"
        assert run_function(src, "f", [3])[0].return_value == 0
        assert run_function(src, "f", [4])[0].return_value == 1

    def test_logical_and_or(self):
        src = ("func f(a: i64, b: i64) -> i64 {"
               " if (a > 0 && b > 0 || a == b) { return 1; } return 0; }")
        assert run_function(src, "f", [1, 1])[0].return_value == 1
        assert run_function(src, "f", [-2, -2])[0].return_value == 1
        assert run_function(src, "f", [-1, 2])[0].return_value == 0


class TestControlFlow:
    def test_for_loop_sum(self):
        src = ("func f(n: i64) -> i64 { var s: i64 = 0; var i: i64;"
               " for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }")
        assert run_function(src, "f", [10])[0].return_value == 45

    def test_nested_loops(self):
        src = ("func f(n: i64) -> i64 { var s: i64 = 0; var i: i64; var j: i64;"
               " for (i = 0; i < n; i = i + 1) {"
               "   for (j = 0; j < i; j = j + 1) { s = s + 1; } }"
               " return s; }")
        assert run_function(src, "f", [5])[0].return_value == 10

    def test_while_loop(self):
        src = ("func f(n: i64) -> i64 { var c: i64 = 0;"
               " while (n > 1) { if (n % 2 == 0) { n = n / 2; }"
               " else { n = 3 * n + 1; } c = c + 1; } return c; }")
        assert run_function(src, "f", [6])[0].return_value == 8  # collatz(6)

    def test_early_return_in_branch(self):
        src = ("func f(a: i64) -> i64 {"
               " if (a < 0) { return 0 - a; } return a; }")
        assert run_function(src, "f", [-5])[0].return_value == 5

    def test_dead_code_after_return_ignored(self):
        src = "func f() -> i64 { return 1; return 2; }"
        assert run_function(src, "f", [])[0].return_value == 1


class TestMemoryLowering:
    def test_array_read_write(self):
        src = ("task t(A: f64*, n: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + 1) { A[i] = A[i] * 2.0; } }")

        def setup(memory):
            base = memory.alloc_array(8, 4, "A", init=[1.0, 2.0, 3.0, 4.0])
            setup.base = base
            return [base, 4]

        _, memory = run_function(src, "t", None, setup)
        from repro.ir import F64
        values = memory.read_array(setup.base, 8, 4, F64)
        assert values == [2.0, 4.0, 6.0, 8.0]

    def test_pointer_to_pointer_indexing(self):
        src = "func f(rows: i64**) -> i64 { return rows[1][2]; }"
        module = compile_source(src)
        func = module.function("f")
        loads = [i for i in func.instructions() if isinstance(i, Load)]
        # row pointer load + element load + alloca traffic
        assert len(loads) >= 2

    def test_pointer_plus_integer_is_gep(self):
        src = "func f(A: f64*, i: i64) -> f64 { var p: f64* = A + i; return p[0]; }"
        trace, _ = run_function(src, "f", None, setup=lambda m: [
            m.alloc_array(8, 4, "A", init=[0.5, 1.5, 2.5, 3.5]), 2,
        ])
        assert trace.return_value == 2.5


class TestCalls:
    def test_call_lowering_and_coercion(self):
        src = ("func scale(x: f64, k: f64) -> f64 { return x * k; }"
               "func f(a: i64) -> f64 { return scale(a, 2.5); }")
        assert run_function(src, "f", [4])[0].return_value == 10.0

    def test_unknown_callee_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("func f() { g(); }")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(LoweringError):
            compile_source(
                "func g(a: i64) -> i64 { return a; }"
                "func f() -> i64 { return g(1, 2); }"
            )


class TestLoweringErrors:
    def test_unknown_variable_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("func f() { x = 1; }")

    def test_fall_off_nonvoid_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("func f() -> i64 { var x: i64 = 1; }")

    def test_indexing_non_pointer_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("func f(n: i64) -> i64 { return n[0]; }")


class TestOptimizedStillCorrect:
    def test_mem2reg_preserves_semantics(self):
        src = ("func f(n: i64) -> i64 { var a: i64 = 0; var b: i64 = 1;"
               " var i: i64; for (i = 0; i < n; i = i + 1) {"
               " var t: i64 = a + b; a = b; b = t; } return a; }")
        module = compile_source(src)
        func = module.function("f")
        before = Interpreter(SimMemory()).run(func, [10]).return_value
        optimize_function(func)
        after = Interpreter(SimMemory()).run(func, [10]).return_value
        assert before == after == 55  # fib(10)
        # All scalar traffic should be promoted away.
        assert not any(isinstance(i, (Load, Store)) for i in func.instructions())
