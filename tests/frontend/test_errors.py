"""Frontend error paths: malformed DSL raises *typed* errors.

The contract the fuzzer's negative mode
(:func:`repro.fuzz.generator.generate_invalid_program`) relies on:
every malformed input fails with ``LexError`` / ``ParseError`` /
``LoweringError`` carrying a message — never an arbitrary crash.
"""

from __future__ import annotations

import pytest

from repro.frontend import (
    LexError,
    LoweringError,
    ParseError,
    compile_source,
)

VALID = """
task t(A: f64*, n: i64) {
  var i: i64 = 0;
  for (i = 0; i < n; i = i + 1) {
    A[i] = A[i] * 2.0;
  }
}
"""


class TestLexErrors:
    def test_stray_character(self):
        with pytest.raises(LexError):
            compile_source(VALID.replace(";", "; $", 1), name="t")

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            compile_source(VALID + "/* dangling", name="t")


class TestParseErrors:
    def test_unterminated_loop_body(self):
        source = VALID[:VALID.rstrip().rfind("}")]
        with pytest.raises(ParseError):
            compile_source(source, name="t")

    def test_bad_assignment_target(self):
        source = VALID.replace("{\n", "{\n  1 + 2 = 3;\n", 1)
        with pytest.raises(ParseError):
            compile_source(source, name="t")

    def test_missing_semicolon(self):
        source = VALID.replace("var i: i64 = 0;", "var i: i64 = 0")
        with pytest.raises(ParseError):
            compile_source(source, name="t")


class TestLoweringErrors:
    def test_undefined_variable(self):
        source = VALID.replace("{\n", "{\n  nope = 1;\n", 1)
        with pytest.raises(LoweringError):
            compile_source(source, name="t")

    def test_type_mismatch_pointer_from_float(self):
        source = VALID.replace("{\n", "{\n  var q: i64* = 3.5;\n", 1)
        with pytest.raises(LoweringError):
            compile_source(source, name="t")

    def test_indexing_non_pointer(self):
        source = VALID.replace("{\n", "{\n  n[0] = 1.0;\n", 1)
        with pytest.raises(LoweringError):
            compile_source(source, name="t")

    def test_unknown_callee(self):
        source = VALID.replace("{\n", "{\n  var x: f64 = nosuch(1.0);\n", 1)
        with pytest.raises(LoweringError):
            compile_source(source, name="t")

    def test_call_arity_mismatch(self):
        source = (
            "func h(a: f64) -> f64 {\n  return a;\n}\n"
            + VALID.replace("{\n", "{\n  var x: f64 = h(1.0, 2.0);\n", 1)
        )
        with pytest.raises(LoweringError):
            compile_source(source, name="t")

    def test_unknown_type_name(self):
        source = VALID.replace("var i: i64", "var i: i65", 1)
        with pytest.raises((LoweringError, ParseError)):
            compile_source(source, name="t")


class TestErrorsAreTyped:
    def test_messages_are_informative(self):
        try:
            compile_source(VALID.replace("{\n", "{\n  nope = 1;\n", 1),
                           name="t")
        except LoweringError as exc:
            assert "nope" in str(exc)
        else:
            pytest.fail("expected LoweringError")

    def test_fuzzer_negative_mode_contract(self):
        # The generator's invalid programs must stay inside the typed
        # error families they declare (spot check; the fuzz suite does
        # the wide sweep).
        from repro.fuzz.generator import generate_invalid_program

        for seed in range(20):
            invalid = generate_invalid_program(seed)
            with pytest.raises(invalid.expects):
                compile_source(invalid.source, name="invalid")
