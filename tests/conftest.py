"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.ir import verify_function
from repro.transform import optimize_module


def compile_optimized(source: str):
    """Parse, lower and optimize a task-language module; verify all."""
    module = compile_source(source)
    optimize_module(module)
    for func in module.functions.values():
        verify_function(func)
    return module


LU_KERNEL = """
task lu_kernel(A: f64*, N: i64, block: i64) {
  var i: i64; var j: i64; var k: i64;
  for (i = 0; i < block; i = i + 1) {
    for (j = i + 1; j < block; j = j + 1) {
      A[j*N + i] = A[j*N + i] / A[i*N + i];
      for (k = i + 1; k < block; k = k + 1) {
        A[j*N + k] = A[j*N + k] - A[j*N + i] * A[i*N + k];
      }
    }
  }
}
"""

POINTER_CHASE = """
task chase(head: i64*, next: i64*, data: f64*, n: i64) {
  var p: i64; var s: f64;
  p = head[0];
  s = 0.0;
  while (p >= 0) {
    if (data[p] > 0.5) {
      s = s + data[p];
    }
    p = next[p];
  }
  data[0] = s;
}
"""


@pytest.fixture
def lu_module():
    return compile_optimized(LU_KERNEL)


@pytest.fixture
def chase_module():
    return compile_optimized(POINTER_CHASE)
