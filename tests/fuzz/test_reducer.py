"""Reducer: minimizes while preserving the failure; unparser round-trips."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source, parse
from repro.fuzz.generator import (
    MARKER_TEXT,
    generate_program,
    inject_marker,
)
from repro.fuzz.reducer import (
    ReducerError,
    reduce_program,
    statement_count,
)
from repro.fuzz.unparse import unparse_program


def _marker_predicate(program) -> bool:
    compile_source(program.source, name="pred")
    return MARKER_TEXT in program.source


class TestUnparser:
    def test_round_trip_is_structurally_stable(self):
        for seed in range(20):
            source = generate_program(seed).source
            once = unparse_program(parse(source))
            twice = unparse_program(parse(once))
            assert once == twice

    def test_round_trip_compiles(self):
        for seed in range(20):
            source = unparse_program(parse(generate_program(seed).source))
            compile_source(source, name="roundtrip")


class TestReduction:
    def test_shrinks_injected_failure_to_quarter_or_less(self):
        for seed in (0, 5, 9):
            program = inject_marker(generate_program(seed))
            result = reduce_program(program, _marker_predicate)
            assert MARKER_TEXT in result.program.source
            assert result.ratio <= 0.25
            compile_source(result.program.source, name="reduced")

    def test_failure_preserved_at_every_acceptance(self):
        seen = []

        def predicate(program):
            seen.append(program)
            return _marker_predicate(program)

        program = inject_marker(generate_program(2))
        result = reduce_program(program, predicate)
        assert MARKER_TEXT in result.program.source
        assert result.checks == len(seen)

    def test_predicate_exception_counts_as_not_failing(self):
        # Candidates that stop compiling must never be accepted: the
        # marker predicate compiles first, so a reduction that broke
        # the program would raise — and the result still compiles.
        program = inject_marker(generate_program(7))
        result = reduce_program(program, _marker_predicate)
        compile_source(result.program.source, name="still-valid")

    def test_non_failing_program_is_rejected(self):
        with pytest.raises(ReducerError):
            reduce_program(generate_program(0), lambda p: False)

    def test_budget_is_respected(self):
        program = inject_marker(generate_program(1))
        result = reduce_program(program, _marker_predicate, max_checks=5)
        assert result.checks <= 5


class TestStatementCount:
    def test_counts_nested_statements(self):
        source = """task fuzz_task(A: f64*) {
  var i: i64 = 0;
  for (i = 0; i < 4; i = i + 1) {
    if (i > 1) {
      A[i] = 1.0;
    } else {
      A[i] = 2.0;
    }
  }
}
"""
        # var, for, if, two assigns
        assert statement_count(source) == 5

    def test_accepts_program_objects(self):
        program = generate_program(0)
        assert statement_count(program) == statement_count(program.source)
