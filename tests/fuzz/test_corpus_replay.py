"""Corpus format round-trip, and the checked-in regression replay gate."""

from __future__ import annotations

import os

import pytest

from repro.fuzz.corpus import (
    CorpusError,
    load_corpus,
    load_program,
    save_program,
)
from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import run_oracles

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestFormat:
    def test_round_trip(self, tmp_path):
        program = generate_program(12)
        path = str(tmp_path / "p.fuzz")
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.source == program.source
        assert loaded.params == program.params
        assert loaded.seed == program.seed
        assert loaded.features == program.features

    def test_missing_magic_raises(self, tmp_path):
        path = str(tmp_path / "bad.fuzz")
        with open(path, "w") as handle:
            handle.write("task fuzz_task() {\n}\n")
        with pytest.raises(CorpusError):
            load_program(path)

    def test_bad_header_raises(self, tmp_path):
        path = str(tmp_path / "bad.fuzz")
        with open(path, "w") as handle:
            handle.write("//! fuzz-corpus v1\n//! param {not json\nx\n")
        with pytest.raises(CorpusError):
            load_program(path)

    def test_header_only_raises(self, tmp_path):
        path = str(tmp_path / "empty.fuzz")
        with open(path, "w") as handle:
            handle.write("//! fuzz-corpus v1\n//! seed 3\n")
        with pytest.raises(CorpusError):
            load_program(path)

    def test_absent_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(str(tmp_path / "missing")) == []


class TestRegressionReplay:
    def test_corpus_is_not_empty(self):
        assert load_corpus(CORPUS_DIR), (
            "the checked-in corpus under tests/fuzz/corpus/ disappeared"
        )

    def test_every_entry_replays_clean(self):
        for name, program in load_corpus(CORPUS_DIR):
            violations = run_oracles(program)
            assert violations == [], (
                "corpus entry %s violates: %s"
                % (name, [v.headline() for v in violations])
            )

    def test_entries_carry_failure_notes(self):
        # Reduced reproducers must document their failure mode.
        entries = dict(load_corpus(CORPUS_DIR))
        assert "fptosi-inf.fuzz" in entries
        assert "failure mode" in entries["fptosi-inf.fuzz"].note
