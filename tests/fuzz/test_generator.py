"""Generator guarantees: determinism, validity, termination, coverage."""

from __future__ import annotations

import pytest

from repro.frontend import LexError, LoweringError, ParseError, parse
from repro.fuzz.generator import (
    MARKER_TEXT,
    GeneratorConfig,
    generate_invalid_program,
    generate_program,
    inject_marker,
)
from repro.fuzz.oracles import FUZZ_MAX_STEPS, prepare_case
from repro.fuzz.workload import materialize_param
from repro.interp.fast import FastInterpreter
from repro.interp.memory import SimMemory

SEEDS = range(40)


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in (0, 7, 123, 99999):
            first = generate_program(seed)
            second = generate_program(seed)
            assert first == second

    def test_different_seeds_differ(self):
        sources = {generate_program(seed).source for seed in SEEDS}
        assert len(sources) == len(SEEDS)


class TestValidity:
    def test_all_seeds_compile_and_verify(self):
        # prepare_case runs the optimizer with per-pass verification
        # and verifies generated access functions.
        for seed in SEEDS:
            prepare_case(generate_program(seed), verify_passes=True)

    def test_all_seeds_terminate_within_budget(self):
        for seed in SEEDS:
            program = generate_program(seed)
            case = prepare_case(program)
            memory = SimMemory()
            args = [materialize_param(memory, p) for p in program.params]
            trace = FastInterpreter(memory, max_steps=FUZZ_MAX_STEPS).run(
                case.execute, args
            )
            # Far below the oracle budget: termination by construction.
            assert trace.instructions < FUZZ_MAX_STEPS // 10

    def test_accesses_stay_in_bounds(self):
        # SimMemory has check_bounds=True by default: an out-of-bounds
        # address raises, so a clean run is the assertion.
        for seed in SEEDS:
            program = generate_program(seed)
            case = prepare_case(program)
            memory = SimMemory()
            args = [materialize_param(memory, p) for p in program.params]
            FastInterpreter(memory, max_steps=FUZZ_MAX_STEPS).run(
                case.execute, args
            )


class TestKnobs:
    def test_feature_switches_prune_features(self):
        config = GeneratorConfig(chase=False, calls=False, recursion=False,
                                 while_loops=False, prefetches=False)
        for seed in range(20):
            program = generate_program(seed, config)
            tags = set(program.features)
            assert not tags & {"chase", "call", "recursion", "while",
                               "prefetch"}

    def test_size_knob_bounds_statements(self):
        small = GeneratorConfig(max_statements=8)
        for seed in range(10):
            program = generate_program(seed, small)
            # Emitted lines are a proxy for statement budget.
            body = program.source.split("task fuzz_task")[1]
            assert body.count(";") < 60

    def test_feature_space_covered_across_seeds(self):
        tags: set = set()
        for seed in range(150):
            tags.update(generate_program(seed).features)
        assert {"loop", "store", "branch", "reduction", "chase",
                "indirection", "while", "call", "cast"} <= tags

    def test_both_access_methods_reached(self):
        methods = {prepare_case(generate_program(s)).method
                   for s in range(60)}
        assert "affine" in methods
        assert "skeleton" in methods


class TestInjectMarker:
    def test_marker_program_compiles_and_carries_marker(self):
        for seed in (0, 3, 11):
            program = inject_marker(generate_program(seed))
            assert MARKER_TEXT in program.source
            prepare_case(program)

    def test_injection_is_deterministic(self):
        assert inject_marker(generate_program(4)) == inject_marker(
            generate_program(4)
        )


class TestNegativeMode:
    def test_invalid_programs_raise_typed_errors(self):
        from repro.frontend import compile_source

        corruptions = set()
        for seed in range(60):
            invalid = generate_invalid_program(seed)
            corruptions.add(invalid.corruption)
            with pytest.raises(invalid.expects):
                compile_source(invalid.source, name="invalid")
        # The seeded choice must exercise several corruption kinds.
        assert len(corruptions) >= 5

    def test_typed_errors_only(self):
        # Whatever is raised must be one of the frontend's typed errors,
        # never an arbitrary crash.
        from repro.frontend import compile_source

        for seed in range(60):
            invalid = generate_invalid_program(seed)
            try:
                compile_source(invalid.source, name="invalid")
            except (LexError, ParseError, LoweringError):
                pass


def test_generated_source_parses_standalone():
    for seed in SEEDS:
        parse(generate_program(seed).source)
