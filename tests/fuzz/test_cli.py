"""The ``fuzz`` evaluation verb: run / replay / reduce, determinism."""

from __future__ import annotations

import json
import os

import pytest

from repro.evaluation.__main__ import main
from repro.evaluation.fuzzing import (
    fuzz_reduce,
    fuzz_replay,
    fuzz_run,
    render_fuzz_report,
    verify_passes_env,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestFuzzRun:
    def test_small_run_is_clean_and_deterministic(self):
        first = fuzz_run(0, 8, pool_sample=2)
        second = fuzz_run(0, 8, pool_sample=2)
        assert first == second
        assert first["violations"] == []
        assert sum(first["methods"].values()) == 8

    def test_cli_exit_codes_and_report(self, capsys, tmp_path):
        out = str(tmp_path / "report.json")
        code = main(["fuzz", "run", "--seed", "0", "--count", "4",
                     "--pool-sample", "0", "--out", out])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "no oracle violations" in stdout
        with open(out) as handle:
            report = json.load(handle)
        assert report["count"] == 4
        assert report["violations"] == []

    def test_render_report_lists_violations(self):
        report = {
            "seed": 0, "count": 1, "pool_sample": 0,
            "methods": {"skeleton": 1}, "features": {"loop": 1},
            "violations": [
                {"oracle": "interp-equivalence", "seed": 0,
                 "detail": "event streams diverge"},
            ],
        }
        text = render_fuzz_report(report)
        assert "1 ORACLE VIOLATION" in text
        assert "interp-equivalence" in text


class TestFuzzReplay:
    def test_replay_checked_in_corpus(self):
        report = fuzz_replay(CORPUS_DIR)
        assert report["entries"]
        assert report["violations"] == []

    def test_cli_replay(self, capsys):
        code = main(["fuzz", "replay", "--corpus", CORPUS_DIR])
        assert code == 0
        assert "no oracle violations" in capsys.readouterr().out


class TestFuzzReduce:
    def test_injected_failure_reduces_to_quarter(self, tmp_path):
        out = str(tmp_path / "reduced.fuzz")
        report = fuzz_reduce(seed=0, inject=True, out=out)
        assert report["ratio"] <= 0.25
        assert "31337" in report["source"]
        # The artifact is a loadable corpus file.
        from repro.fuzz.corpus import load_program

        loaded = load_program(out)
        assert "31337" in loaded.source

    def test_cli_reduce(self, capsys):
        code = main(["fuzz", "reduce", "--seed", "1", "--inject"])
        assert code == 0
        assert "fuzz reduce" in capsys.readouterr().out

    def test_reduce_without_mode_errors(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "reduce"])

    def test_reduce_requires_failing_input(self, tmp_path):
        from repro.fuzz.corpus import save_program
        from repro.fuzz.generator import generate_program

        path = str(tmp_path / "clean.fuzz")
        save_program(generate_program(0), path)
        with pytest.raises(ValueError):
            fuzz_reduce(corpus_file=path)


class TestVerifyPassesEnv:
    def test_context_sets_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PASSES", raising=False)
        with verify_passes_env():
            assert os.environ["REPRO_VERIFY_PASSES"] == "1"
        assert "REPRO_VERIFY_PASSES" not in os.environ

    def test_context_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "0")
        with verify_passes_env():
            assert os.environ["REPRO_VERIFY_PASSES"] == "1"
        assert os.environ["REPRO_VERIFY_PASSES"] == "0"
