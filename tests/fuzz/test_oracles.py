"""Oracles: clean programs pass, broken components are caught."""

from __future__ import annotations


from repro.fuzz.generator import ParamSpec, GeneratedProgram, generate_program
from repro.fuzz.oracles import (
    ORACLE_NAMES,
    check_engine_pool_equivalence,
    prepare_case,
    run_oracles,
)
from repro.fuzz.workload import FuzzWorkload
from repro.sim import MachineConfig


def _program(source: str, seed: int = 0, **extra) -> GeneratedProgram:
    params = (
        ParamSpec("A", "f64*", count=96, fill="floats", fill_seed=13),
        ParamSpec("B", "f64*", count=96, fill="floats", fill_seed=17),
        ParamSpec("I", "i64*", count=96, fill="ints", fill_seed=19,
                  modulo=96),
        ParamSpec("R", "f64*", count=16, fill="floats", fill_seed=23),
        ParamSpec("n", "i64", value=6),
        ParamSpec("s", "f64", value=1.5),
    )
    return GeneratedProgram(seed=seed, source=source, params=params,
                            **extra)


HEADER = "task fuzz_task(A: f64*, B: f64*, I: i64*, R: f64*, n: i64, s: f64)"


class TestCleanPrograms:
    def test_generated_programs_pass_all_oracles(self):
        for seed in range(25):
            assert run_oracles(generate_program(seed)) == []

    def test_engine_pool_equivalence_on_batch(self):
        programs = [generate_program(seed) for seed in range(3)]
        assert check_engine_pool_equivalence(programs) == []

    def test_fptosi_nonfinite_is_defined(self):
        # Regression for the fuzzer-found interpreter crash: casting
        # inf/NaN to int must saturate/zero, not raise OverflowError.
        program = _program(HEADER + """ {
  var v0: f64 = (1.0 / (s - s));
  R[0] = (f64) ((i64) v0);
  R[1] = (f64) ((i64) (0.0 - v0));
  R[2] = (f64) ((i64) (v0 - v0));
}
""")
        assert run_oracles(program) == []


class TestBrokenComponentsAreCaught:
    def test_compile_failure_is_a_violation(self):
        program = _program(HEADER + " {\n  R[0] = nope;\n}\n")
        violations = run_oracles(program)
        assert [v.oracle for v in violations] == ["compile"]

    def test_interp_divergence_is_caught(self, monkeypatch):
        import repro.interp.decode as decode

        # Sabotage the fast core's fptosi only: the differential oracle
        # must notice the two interpreters disagreeing.
        monkeypatch.setitem(decode.CAST_FNS, "fptosi",
                            lambda v: int(v) + 1 if v == v else 0)
        program = _program(HEADER + """ {
  R[0] = (f64) ((i64) (s * 2.0));
}
""", seed=1)
        violations = run_oracles(program)
        assert any(v.oracle == "interp-equivalence" for v in violations)

    def test_impure_access_phase_is_caught(self):
        # Hand-build a case whose "access" function is the execute
        # function itself — it stores, so the pure-slice oracle fires.
        program = _program(HEADER + """ {
  var i0: i64 = 0;
  for (i0 = 0; i0 < 8; i0 = i0 + 1) {
    A[i0] = A[i0] + 1.0;
  }
}
""", seed=2)
        case = prepare_case(program)
        case.access = case.execute
        from repro.fuzz.oracles import _check_dae_semantics

        violations = _check_dae_semantics(case)
        assert violations
        assert "store" in violations[0].detail

    def test_machine_divergence_is_caught(self, monkeypatch):
        from repro.runtime.scheduler import DAEScheduler

        original = DAEScheduler.run

        def skewed(self, profiles, scheme, policy, record_timeline=None):
            result = original(self, profiles, scheme, policy,
                              record_timeline=record_timeline)
            if self.machine is not None:
                result.energy_nj += 1.0
            return result

        monkeypatch.setattr(DAEScheduler, "run", skewed)
        violations = run_oracles(generate_program(0))
        assert any(v.oracle == "machine-invariance" for v in violations)

    def test_crash_inside_oracle_is_reported_not_raised(self, monkeypatch):
        import repro.fuzz.oracles as oracles

        def boom(case):
            raise RuntimeError("synthetic oracle crash")

        monkeypatch.setattr(oracles, "_check_interp_equivalence", boom)
        violations = oracles.run_oracles(generate_program(3))
        assert any(v.oracle == "crash:interp-equivalence"
                   for v in violations)
        assert any("synthetic oracle crash" in v.detail
                   for v in violations)


class TestWorkloadAdapter:
    def test_fuzz_workload_is_picklable(self):
        import pickle

        workload = FuzzWorkload(generate_program(0))
        clone = pickle.loads(pickle.dumps(workload))
        assert clone.program == workload.program
        assert clone.name == workload.name

    def test_scale_is_ignored(self):
        workload = FuzzWorkload(generate_program(0))
        compiled = workload.compile()
        _, tasks1, _ = workload.instantiate(scale=1, compiled=compiled)
        _, tasks4, _ = workload.instantiate(scale=4, compiled=compiled)
        assert len(tasks1) == len(tasks4) == 1


def test_machine_invariance_oracle_is_registered_and_clean():
    from repro.fuzz.oracles import _check_machine_invariance

    assert "machine-invariance" in ORACLE_NAMES
    case = prepare_case(generate_program(0))
    assert _check_machine_invariance(case, MachineConfig()) == []


def test_oracle_names_cover_reported_oracles():
    for seed in range(5):
        for violation in run_oracles(generate_program(seed)):
            base = violation.oracle.split(":", 1)[-1]
            assert base in ORACLE_NAMES
