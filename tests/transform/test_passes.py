"""mem2reg, DCE, CFG simplification, cloning."""

from repro.analysis import reachable_blocks
from repro.frontend import compile_source
from repro.interp import Interpreter, SimMemory
from repro.ir import (
    Alloca,
    CondBr,
    Constant,
    I64,
    Jump,
    Load,
    Phi,
    Store,
    verify_function,
)
from repro.transform import (
    dead_code_elimination,
    mem2reg,
    optimize_function,
    promotable_allocas,
    simplify_cfg,
)
from repro.transform.clone import clone_function


def compiled(source, name):
    return compile_source(source).function(name)


class TestMem2Reg:
    def test_promotes_all_scalar_allocas(self):
        func = compiled(
            "func f(n: i64) -> i64 { var a: i64 = 1; var b: i64 = 2;"
            " return a + b + n; }", "f",
        )
        count = mem2reg(func)
        assert count >= 3  # a, b and the n.addr slot
        assert not any(isinstance(i, Alloca) for i in func.instructions())
        verify_function(func)

    def test_inserts_phi_at_merge(self):
        func = compiled(
            "func f(n: i64) -> i64 { var x: i64 = 0;"
            " if (n > 0) { x = 1; } else { x = 2; } return x; }", "f",
        )
        mem2reg(func)
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        assert len(phis) == 1
        assert len(phis[0].incoming()) == 2

    def test_loop_carried_variable_gets_header_phi(self):
        func = compiled(
            "func f(n: i64) -> i64 { var s: i64 = 0; var i: i64;"
            " for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }", "f",
        )
        mem2reg(func)
        header = func.block_named("for.cond")
        assert len(header.phis()) >= 2  # s and i

    def test_escaped_alloca_not_promoted(self):
        # Passing the address to a callee makes the slot non-promotable.
        module = compile_source(
            "func g(p: f64*) { p[0] = 1.0; }"
            "func f() { var x: f64 = 0.0; }"
        )
        func = module.function("f")
        allocas = [i for i in func.instructions() if isinstance(i, Alloca)]
        assert allocas
        assert promotable_allocas(func) == allocas  # no escape here

    def test_semantics_preserved(self):
        src = ("func f(n: i64) -> i64 { var acc: i64 = 1; var i: i64;"
               " for (i = 1; i <= n; i = i + 1) { acc = acc * i; }"
               " return acc; }")
        func = compiled(src, "f")
        before = Interpreter(SimMemory()).run(func, [6]).return_value
        mem2reg(func)
        verify_function(func)
        after = Interpreter(SimMemory()).run(func, [6]).return_value
        assert before == after == 720


class TestDCE:
    def test_removes_unused_arithmetic(self):
        func = compiled(
            "func f(n: i64) -> i64 { var waste: i64 = n * 17 + 4;"
            " return n; }", "f",
        )
        mem2reg(func)
        removed = dead_code_elimination(func)
        assert removed >= 2
        opcodes = [getattr(i, "op", i.opcode) for i in func.instructions()]
        assert "mul" not in opcodes

    def test_keeps_stores(self):
        func = compiled("task t(A: f64*) { A[3] = 1.0; }", "t")
        optimize_function(func)
        assert any(isinstance(i, Store) for i in func.instructions())

    def test_removes_dead_phi_cycles(self):
        func = compiled(
            "func f(n: i64) -> i64 { var a: i64 = 0; var i: i64;"
            " for (i = 0; i < n; i = i + 1) { a = a + 1; } return n; }", "f",
        )
        mem2reg(func)
        dead_code_elimination(func)
        # 'a' is never used; its phi chain must be gone.
        phi_names = [i.name for i in func.instructions()
                     if isinstance(i, Phi)]
        assert all("a" != name.split(".")[0] for name in phi_names)


class TestSimplifyCFG:
    def test_folds_constant_branch(self):
        func = compiled(
            "func f() -> i64 { if (1 == 1) { return 5; } return 6; }", "f",
        )
        mem2reg(func)
        simplify_cfg(func)
        assert not any(isinstance(i, CondBr) for i in func.instructions())
        assert Interpreter(SimMemory()).run(func, []).return_value == 5

    def test_merges_straightline_chains(self):
        func = compiled("func f(n: i64) -> i64 { return n + 1; }", "f")
        mem2reg(func)
        simplify_cfg(func)
        assert len(func.blocks) == 1

    def test_unreachable_blocks_removed(self):
        func = compiled(
            "func f() -> i64 { return 1; }", "f",
        )
        dead = func.add_block("dead")
        from repro.ir import IRBuilder
        IRBuilder(dead).ret(Constant(I64, 9))
        simplify_cfg(func)
        assert dead not in func.blocks

    def test_semantics_stable_under_full_pipeline(self):
        src = ("func f(n: i64) -> i64 { var r: i64 = 0;"
               " if (n % 3 == 0) { r = 1; } else if (n % 3 == 1) { r = 2; }"
               " else { r = 3; } return r; }")
        for value, expect in ((9, 1), (10, 2), (11, 3)):
            func = compiled(src, "f")
            optimize_function(func)
            got = Interpreter(SimMemory()).run(func, [value]).return_value
            assert got == expect


class TestClone:
    def test_clone_is_independent(self):
        func = compiled(
            "func f(n: i64) -> i64 { var s: i64 = 0; var i: i64;"
            " for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }", "f",
        )
        optimize_function(func)
        clone = clone_function(func, "f_copy")
        verify_function(clone)
        assert clone.name == "f_copy"
        assert Interpreter(SimMemory()).run(clone, [5]).return_value == 10
        # Mutating the clone leaves the original intact.
        for inst in list(clone.instructions()):
            pass
        clone.blocks[0].instructions[0]
        original = Interpreter(SimMemory()).run(func, [5]).return_value
        assert original == 10

    def test_clone_remaps_phis_and_branches(self):
        func = compiled(
            "func f(n: i64) -> i64 { var x: i64 = 0;"
            " if (n > 0) { x = 1; } return x; }", "f",
        )
        optimize_function(func)
        clone = clone_function(func, "g")
        own_blocks = set(map(id, clone.blocks))
        for block in clone.blocks:
            for succ in block.successors():
                assert id(succ) in own_blocks
            for phi in block.phis():
                for pred in phi.incoming_blocks:
                    assert id(pred) in own_blocks
