"""Per-pass IR verification (REPRO_VERIFY_PASSES / verify_passes=...)."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.transform import (
    PassVerificationError,
    optimize_function,
    optimize_module,
    verify_passes_enabled,
)
from repro.transform import pipeline

SOURCE = """
task t(A: f64*, n: i64) {
  var i: i64 = 0;
  var acc: f64 = 0.0;
  for (i = 0; i < n; i = i + 1) {
    acc = acc + A[i];
  }
  A[0] = acc;
}
"""


def _fresh_function():
    module = compile_source(SOURCE, name="verify-passes")
    return module.functions["t"]


class TestSwitchResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "1")
        assert verify_passes_enabled(False) is False
        monkeypatch.delenv("REPRO_VERIFY_PASSES")
        assert verify_passes_enabled(True) is True

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PASSES", raising=False)
        assert verify_passes_enabled() is False
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "1")
        assert verify_passes_enabled() is True
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "0")
        assert verify_passes_enabled() is False
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "")
        assert verify_passes_enabled() is False


class TestCleanPipeline:
    def test_optimize_with_verification_succeeds(self):
        optimize_function(_fresh_function(), verify_passes=True)

    def test_env_var_drives_module_optimization(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "1")
        module = compile_source(SOURCE, name="verify-passes")
        optimize_module(module)


def _corrupt_once():
    """A pass that drops the entry terminator on its first invocation
    and reports no changes (so the fixed point ends immediately)."""
    state = {"done": False}

    def evil(func):
        if not state["done"]:
            state["done"] = True
            func.blocks[-1].instructions.pop()
        return 0

    return evil


class TestCorruptingPassIsBlamed:
    def test_offending_pass_named(self, monkeypatch):
        monkeypatch.setattr(pipeline, "_PASSES",
                            (("evil", _corrupt_once()),))
        with pytest.raises(PassVerificationError) as err:
            optimize_function(_fresh_function(), verify_passes=True)
        assert err.value.pass_name == "evil"
        assert err.value.function == "t"
        assert any("evil" in p for p in err.value.problems)

    def test_without_flag_corruption_surfaces_later(self, monkeypatch):
        from repro.ir import VerificationError

        monkeypatch.setattr(pipeline, "_PASSES",
                            (("evil", _corrupt_once()),))
        monkeypatch.delenv("REPRO_VERIFY_PASSES", raising=False)
        # The final whole-pipeline verify still catches it, but cannot
        # name the pass.
        with pytest.raises(VerificationError) as err:
            optimize_function(_fresh_function())
        assert not isinstance(err.value, PassVerificationError)


class TestFuzzRunsWithVerification:
    def test_prepare_case_verifies_each_pass(self, monkeypatch):
        from repro.fuzz.generator import generate_program
        from repro.fuzz.oracles import prepare_case

        calls = {"n": 0}
        real = pipeline.verify_function

        def counting_verify(func):
            calls["n"] += 1
            return real(func)

        monkeypatch.setattr(pipeline, "verify_function", counting_verify)
        prepare_case(generate_program(0), verify_passes=True)
        # mem2reg + >=1 fixed-point iteration over 4 passes, per function.
        assert calls["n"] >= 5
