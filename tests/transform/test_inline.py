"""Function inlining tests."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, SimMemory
from repro.ir import Call, verify_function
from repro.transform import (
    InlineError,
    can_inline,
    inline_all_calls,
    optimize_function,
)


def get(module_src, name):
    return compile_source(module_src), name


class TestInlining:
    SRC = (
        "func square(x: i64) -> i64 { return x * x; }"
        "func f(n: i64) -> i64 { return square(n) + square(n + 1); }"
    )

    def test_inline_removes_calls(self):
        module = compile_source(self.SRC)
        func = module.function("f")
        count = inline_all_calls(func)
        assert count == 2
        assert not any(isinstance(i, Call) for i in func.instructions())
        verify_function(func)

    def test_inline_preserves_semantics(self):
        module = compile_source(self.SRC)
        func = module.function("f")
        before = Interpreter(SimMemory()).run(func, [4]).return_value
        inline_all_calls(func)
        optimize_function(func)
        after = Interpreter(SimMemory()).run(func, [4]).return_value
        assert before == after == 41

    def test_inline_void_call_with_memory_effects(self):
        src = (
            "func store2(A: f64*, i: i64) { A[i] = 2.0; }"
            "task t(A: f64*) { store2(A, 1); store2(A, 3); }"
        )
        module = compile_source(src)
        func = module.function("t")
        inline_all_calls(func)
        verify_function(func)
        memory = SimMemory()
        base = memory.alloc_array(8, 4, "A")
        Interpreter(memory).run(func, [base])
        from repro.ir import F64
        assert memory.load(base + 8, F64) == 2.0
        assert memory.load(base + 24, F64) == 2.0

    def test_inline_callee_with_control_flow(self):
        src = (
            "func clamp(x: i64) -> i64 {"
            " if (x > 10) { return 10; } return x; }"
            "func f(n: i64) -> i64 { return clamp(n * 3); }"
        )
        module = compile_source(src)
        func = module.function("f")
        inline_all_calls(func)
        optimize_function(func)
        run = lambda v: Interpreter(SimMemory()).run(func, [v]).return_value
        assert run(2) == 6
        assert run(5) == 10

    def test_nested_calls_inline_to_fixpoint(self):
        src = (
            "func a(x: i64) -> i64 { return x + 1; }"
            "func b(x: i64) -> i64 { return a(x) * 2; }"
            "func f(x: i64) -> i64 { return b(x) + a(x); }"
        )
        module = compile_source(src)
        func = module.function("f")
        inline_all_calls(func)
        assert not any(isinstance(i, Call) for i in func.instructions())
        optimize_function(func)
        assert Interpreter(SimMemory()).run(func, [3]).return_value == 12


class TestInlineLegality:
    def test_recursive_function_not_inlinable(self):
        src = (
            "func fact(n: i64) -> i64 {"
            " if (n <= 1) { return 1; } return n * fact(n - 1); }"
            "func f(n: i64) -> i64 { return fact(n); }"
        )
        module = compile_source(src)
        assert not can_inline(module.function("fact"))
        with pytest.raises(InlineError):
            inline_all_calls(module.function("f"))

    def test_no_inline_marker_respected(self):
        src = (
            "func ext(x: i64) -> i64 { return x; }"
            "func f(x: i64) -> i64 { return ext(x); }"
        )
        module = compile_source(src)
        module.function("ext").no_inline = True
        with pytest.raises(InlineError):
            inline_all_calls(module.function("f"))

    def test_mutual_recursion_detected(self):
        # Build mutual recursion manually (the frontend lowers in order,
        # so use IR-level patching).
        src = (
            "func even(n: i64) -> i64 { if (n == 0) { return 1; }"
            " return n; }"
            "func odd(n: i64) -> i64 { if (n == 0) { return 0; }"
            " return even(n - 1); }"
        )
        module = compile_source(src)
        even = module.function("even")
        odd = module.function("odd")
        # Patch even to call odd, closing the cycle.
        from repro.ir import Call as CallInst, Ret
        for block in even.blocks:
            term = block.terminator
            if isinstance(term, Ret) and term.value is not None:
                call = CallInst(odd, [even.args[0]])
                block.insert_before(call, term)
                term.replace_operand(term.value, call)
                break
        assert not can_inline(even)
        assert not can_inline(odd)
