"""Global value numbering tests."""

from repro.frontend import compile_source
from repro.interp import Interpreter, SimMemory
from repro.ir import GEP, BinOp, verify_function
from repro.transform import global_value_numbering, mem2reg
from repro.transform.dce import dead_code_elimination


def prepared(source, name):
    func = compile_source(source).function(name)
    mem2reg(func)
    return func


def count_op(func, op):
    return sum(
        1 for i in func.instructions()
        if isinstance(i, BinOp) and i.op == op
    )


class TestRedundancyElimination:
    def test_repeated_address_arithmetic_merged(self):
        func = prepared(
            "task t(A: f64*, N: i64, j: i64, i: i64) {"
            " A[j*N + i] = A[j*N + i] * 2.0; }", "t",
        )
        before = count_op(func, "mul")
        removed = global_value_numbering(func)
        verify_function(func)
        assert removed >= 2  # mul and add recomputation
        assert count_op(func, "mul") < before
        geps = [i for i in func.instructions() if isinstance(i, GEP)]
        assert len(geps) == 1  # load and store share the address

    def test_commutative_operands_match(self):
        func = prepared(
            "func f(a: i64, b: i64) -> i64 { return a*b + b*a; }", "f",
        )
        global_value_numbering(func)
        assert count_op(func, "mul") == 1

    def test_non_commutative_not_merged(self):
        func = prepared(
            "func f(a: i64, b: i64) -> i64 { return (a - b) + (b - a); }", "f",
        )
        global_value_numbering(func)
        assert count_op(func, "sub") == 2

    def test_loads_never_merged(self):
        func = prepared(
            "func f(A: f64*) -> f64 { A[0] = A[0] + 1.0; return A[0]; }", "f",
        )
        from repro.ir import Load
        before = sum(1 for i in func.instructions() if isinstance(i, Load))
        global_value_numbering(func)
        after = sum(1 for i in func.instructions() if isinstance(i, Load))
        assert before == after  # memory may have changed between loads


class TestScoping:
    def test_dominating_expression_reused_in_branches(self):
        func = prepared(
            "func f(a: i64, b: i64) -> i64 {"
            " var x: i64 = a * b;"
            " if (a > 0) { x = x + a * b; } else { x = x - a * b; }"
            " return x; }", "f",
        )
        global_value_numbering(func)
        assert count_op(func, "mul") == 1

    def test_sibling_branches_do_not_share(self):
        func = prepared(
            "func f(a: i64, b: i64) -> i64 { var x: i64 = 0;"
            " if (a > 0) { x = a * b; } else { x = a * b; } return x; }", "f",
        )
        global_value_numbering(func)
        # Neither arm dominates the other: both keep their multiply.
        assert count_op(func, "mul") == 2

    def test_loop_body_reuses_header_computation(self):
        func = prepared(
            "func f(n: i64, k: i64) -> i64 { var s: i64 = 0; var i: i64;"
            " for (i = 0; i < n * k; i = i + 1) { s = s + n * k; }"
            " return s; }", "f",
        )
        global_value_numbering(func)
        assert count_op(func, "mul") == 1


class TestSemanticsPreserved:
    def test_lu_kernel_unchanged_semantics(self):
        src = (
            "task t(A: f64*, N: i64, B: i64) { var i: i64; var j: i64;"
            " for (i = 0; i < B; i = i + 1) {"
            "  for (j = 0; j < B; j = j + 1) {"
            "   A[i*N + j] = A[i*N + j] + A[j*N + i]; } } }"
        )
        N, B = 6, 4
        init = [float(i) for i in range(N * N)]

        def run(optimize):
            func = compile_source(src).function("t")
            mem2reg(func)
            if optimize:
                global_value_numbering(func)
                dead_code_elimination(func)
                verify_function(func)
            memory = SimMemory()
            base = memory.alloc_array(8, N * N, "A", init=list(init))
            Interpreter(memory).run(func, [base, N, B])
            from repro.ir import F64
            return memory.read_array(base, 8, N * N, F64)

        assert run(False) == run(True)

    def test_gvn_shrinks_dynamic_instruction_count(self):
        src = (
            "task t(A: f64*, N: i64, B: i64) { var i: i64; var j: i64;"
            " for (i = 0; i < B; i = i + 1) {"
            "  for (j = 0; j < B; j = j + 1) {"
            "   A[i*N + j] = A[i*N + j] * 0.5 + A[i*N + j]; } } }"
        )

        def dynamic_count(optimize):
            func = compile_source(src).function("t")
            mem2reg(func)
            if optimize:
                global_value_numbering(func)
                dead_code_elimination(func)
            memory = SimMemory()
            base = memory.alloc_array(8, 64, "A", init=[1.0] * 64)
            return Interpreter(memory).run(func, [base, 8, 8]).instructions

        assert dynamic_count(True) < dynamic_count(False)
