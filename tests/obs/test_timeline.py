"""Timeline model: the per-core coverage invariant and aggregations."""

import pytest

from repro.obs import SEGMENT_KINDS, Timeline


def make_timeline():
    t = Timeline(scheme="dae", policy="optimal")
    t.add(0, "overhead", 0.0, 40.0, task="t0", freq_ghz=1.6)
    t.add(0, "access", 40.0, 140.0, task="t0", freq_ghz=1.6)
    t.add(0, "switch", 140.0, 160.0, freq_ghz=3.4)
    t.add(0, "execute", 160.0, 400.0, task="t0", freq_ghz=3.4)
    t.add(1, "steal", 0.0, 120.0)
    t.add(1, "overhead", 120.0, 160.0, task="t1", freq_ghz=1.6)
    t.add(1, "execute", 160.0, 300.0, task="t1", freq_ghz=3.4)
    t.add(1, "idle", 300.0, 400.0)
    return t


class TestTimeline:
    def test_kinds_are_closed(self):
        with pytest.raises(ValueError):
            Timeline().add(0, "nap", 0.0, 1.0)

    def test_per_core_sorted(self):
        t = Timeline()
        t.add(0, "execute", 10.0, 20.0)
        t.add(0, "overhead", 0.0, 10.0)
        segments = t.per_core()[0]
        assert [s.kind for s in segments] == ["overhead", "execute"]

    def test_core_total_and_kind_totals(self):
        t = make_timeline()
        assert t.core_total_ns(0) == pytest.approx(400.0)
        assert t.core_total_ns(1) == pytest.approx(400.0)
        totals = t.kind_totals_ns()
        assert set(totals) == set(SEGMENT_KINDS)
        assert totals["execute"] == pytest.approx(240.0 + 140.0)
        assert totals["idle"] == pytest.approx(100.0)

    def test_validate_accepts_full_coverage(self):
        make_timeline().validate(400.0)

    def test_validate_rejects_gap(self):
        t = Timeline()
        t.add(0, "execute", 0.0, 100.0)
        t.add(0, "execute", 150.0, 400.0)   # 50 ns hole
        with pytest.raises(AssertionError):
            t.validate(400.0)

    def test_validate_rejects_short_core(self):
        t = Timeline()
        t.add(0, "execute", 0.0, 100.0)
        with pytest.raises(AssertionError):
            t.validate(400.0)
