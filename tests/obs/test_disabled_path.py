"""The disabled-observability fast path must stay truly free.

The profiler's streaming sink runs once per simulated memory operation;
with the collector disabled it must make zero collector calls and zero
allocations inside the obs modules — guarded here with a counting probe
and with tracemalloc filtered to ``obs/events.py`` + ``obs/metrics.py``.
"""

import tracemalloc

from repro.obs import events as events_module
from repro.obs import metrics as metrics_module
from repro.obs.events import Collector, set_collector
from repro.runtime.profiler import TaskStreamProfiler
from repro.runtime.task import Scheme
from repro.sim.config import MachineConfig

from ..engine.tinywork import TinyWorkload


class _ProbeCollector(Collector):
    """Disabled collector that counts emission-path entries."""

    def __init__(self):
        super().__init__(enabled=False)
        self.calls = 0

    def span(self, name, cat="", args=None):
        self.calls += 1
        return super().span(name, cat, args)

    def instant(self, name, cat="", args=None):
        self.calls += 1
        super().instant(name, cat, args)

    def counter(self, name, value, cat="", args=None):
        self.calls += 1
        super().counter(name, value, cat, args)


def _profile_once(workload, config):
    compiled = workload.compile()
    memory, tasks, _ = workload.instantiate(scale=1, compiled=compiled)
    profiler = TaskStreamProfiler(memory, config)
    return profiler.profile(tasks, Scheme.CAE)


class TestDisabledCollectorPath:
    def test_sink_path_makes_no_collector_calls(self):
        # Compile outside the probe window: the pass pipeline calls
        # collector.span() unguarded by design (it returns a shared
        # null span).  The guarantee under test is the *profiling* hot
        # path: zero collector method calls while disabled.
        workload = TinyWorkload()
        compiled = workload.compile()
        memory, tasks, _ = workload.instantiate(scale=1, compiled=compiled)
        probe = _ProbeCollector()
        saved = set_collector(probe)
        try:
            profiler = TaskStreamProfiler(memory, MachineConfig())
            profile = profiler.profile(tasks, Scheme.CAE)
        finally:
            set_collector(saved)
        assert profile.tasks
        assert probe.calls == 0

    def test_sink_path_allocates_nothing_in_obs(self):
        workload = TinyWorkload()
        config = MachineConfig()
        saved = set_collector(Collector(enabled=False))
        try:
            _profile_once(workload, config)  # warm caches outside the trace
            tracemalloc.start()
            try:
                _profile_once(workload, config)
                snapshot = tracemalloc.take_snapshot()
            finally:
                tracemalloc.stop()
        finally:
            set_collector(saved)
        obs_traces = snapshot.filter_traces((
            tracemalloc.Filter(True, events_module.__file__),
            tracemalloc.Filter(True, metrics_module.__file__),
        ))
        blocks = sum(stat.count for stat in obs_traces.statistics("lineno"))
        assert blocks == 0, obs_traces.statistics("lineno")

    def test_enabled_collector_still_records(self):
        # Sanity check that the probe above is meaningful: the same run
        # with an enabled collector does emit events.
        collector = Collector(enabled=True)
        saved = set_collector(collector)
        try:
            _profile_once(TinyWorkload(), MachineConfig())
        finally:
            set_collector(saved)
        assert len(collector) > 0
        names = {event.name for event in collector.events()}
        assert "profiler.tasks" in names


class TestMetricUpdatesAreAllocationLight:
    def test_histogram_observe_allocates_no_new_objects(self):
        hist = metrics_module.Histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5)  # warm the float boxes
        tracemalloc.start()
        try:
            for _ in range(100):
                hist.observe(5.0)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        traces = snapshot.filter_traces((
            tracemalloc.Filter(True, metrics_module.__file__),
        ))
        # Bucket/count updates are in-place on pre-built structures;
        # at most transient float boxes show up.
        blocks = sum(stat.count for stat in traces.statistics("lineno"))
        assert blocks <= 2
