"""End-to-end observability over a real Cholesky DAE run.

Compiles the Cholesky workload, profiles the DAE scheme, and schedules
it with timeline recording on — then checks that the trace alone can
answer the paper's questions (which loops went affine, where the time
went) and that the recorded timeline is exactly consistent with the
``ScheduleResult``.
"""

import json

import pytest

from repro import obs
from repro.evaluation import relative_metrics
from repro.power.frequency import OptimalEDPPolicy
from repro.runtime.profiler import TaskStreamProfiler
from repro.runtime.scheduler import DAEScheduler
from repro.runtime.task import Scheme
from repro.sim import MachineConfig
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def traced():
    """(collector, schedule result) of one fully observed Cholesky run."""
    collector = obs.Collector(enabled=True)
    config = MachineConfig()
    with obs.collecting(collector):
        workload = workload_by_name("cholesky")
        compiled = workload.compile()
        memory, tasks, _ = workload.instantiate(scale=1, compiled=compiled)
        stream = TaskStreamProfiler(memory, config).profile(tasks, Scheme.DAE)
        result = DAEScheduler(config).run(
            stream.tasks, Scheme.DAE, OptimalEDPPolicy(), record_timeline=True
        )
    return collector, result


class TestCompilerEvents:
    def test_emits_affine_decision(self, traced):
        collector, _ = traced
        decisions = collector.select(name="access_phase.decision")
        assert len(decisions) >= 1
        affine = [d for d in decisions if d.args["method"] == "affine"]
        assert len(affine) >= 1
        for event in affine:
            assert event.args["task"]
            assert event.args["affine_loops"] >= 1

    def test_emits_per_loop_strategy(self, traced):
        collector, _ = traced
        loops = collector.select(name="access_phase.loop")
        assert len(loops) >= 1
        for event in loops:
            assert event.args["strategy"] in ("affine", "skeleton", "none")
            assert isinstance(event.args["reasons"], list)

    def test_emits_pass_spans(self, traced):
        collector, _ = traced
        spans = collector.select(cat="compiler.pass")
        assert spans
        assert any(e.name == "pass.gvn" for e in spans)

    def test_emits_phase_counters_with_snapshots(self, traced):
        collector, _ = traced
        counters = collector.select(name="phase.instructions")
        assert counters
        sample = counters[0]
        assert sample.args["trace"]["instructions"] == sample.value
        assert "loads" in sample.args["cache"]


class TestTimeline:
    def test_per_core_durations_sum_to_total_time(self, traced):
        _, result = traced
        timeline = result.timeline
        assert timeline is not None
        per_core = timeline.per_core()
        assert len(per_core) == MachineConfig().cores
        for segments in per_core.values():
            total_s = sum(s.dur_ns for s in segments) * 1e-9
            assert abs(total_s - result.time_s) < 1e-9

    def test_segments_tile_exactly(self, traced):
        _, result = traced
        result.timeline.validate(result.time_ns)

    def test_phases_present_with_operating_points(self, traced):
        _, result = traced
        kinds = {s.kind for s in result.timeline.segments}
        assert {"access", "execute", "overhead"} <= kinds
        for segment in result.timeline.segments:
            if segment.kind in ("access", "execute"):
                assert segment.freq_ghz > 0
                assert segment.task

    def test_timeline_off_when_disabled(self, traced):
        _, result = traced
        # Outside any collecting() block the default is disabled, so a
        # plain run records no timeline and emits no events.
        assert not obs.enabled()
        fresh = DAEScheduler(MachineConfig()).run(
            [], Scheme.DAE, OptimalEDPPolicy()
        )
        assert fresh.timeline is None


class TestSummary:
    def test_summary_matches_result(self, traced):
        _, result = traced
        summary = result.summary()
        assert summary["time_s"] == result.time_s
        assert summary["energy_j"] == result.energy_j
        assert summary["edp_js"] == result.edp_js
        buckets = summary["buckets"]
        assert buckets["prefetch_j"] + buckets["task_j"] + buckets["osi_j"] \
            == pytest.approx(result.energy_j)

    def test_relative_metrics_identity(self, traced):
        _, result = traced
        relative = relative_metrics(result, result)
        assert relative == {"time": 1.0, "energy": 1.0, "edp": 1.0}


class TestArtifacts:
    def test_chrome_trace_from_real_run(self, traced, tmp_path):
        collector, result = traced
        path = obs.write_chrome_trace(
            str(tmp_path / "chol.trace.json"),
            collector.events(), [result.timeline],
        )
        doc = json.load(open(path))
        assert doc["traceEvents"]
        tracks = {}
        for entry in doc["traceEvents"]:
            if entry["ph"] == "M":
                continue
            assert {"ph", "ts", "pid", "tid"} <= set(entry)
            tracks.setdefault((entry["pid"], entry["tid"]), []).append(
                entry["ts"]
            )
        for stamps in tracks.values():
            assert stamps == sorted(stamps)

    def test_explain_report_names_loops_and_strategies(self, traced):
        collector, result = traced
        report = obs.explain_report(
            "cholesky", collector.events(),
            schedules={"Compiler DAE": result.summary()},
            timelines=[result.timeline],
        )
        assert "chol_diag" in report
        assert "chol_panel" in report
        assert "chol_update" in report
        assert "affine" in report
        assert "Schedule breakdown" in report
        assert "Per-core timeline" in report
