"""Collector semantics: enable/disable, spans, nesting, threads."""

import threading

import pytest

from repro import obs
from repro.obs.events import get_collector, set_collector


class TestEnableDisable:
    def test_global_default_starts_disabled(self):
        assert obs.enabled() is False
        assert get_collector().enabled is False

    def test_disabled_collector_records_nothing(self):
        col = obs.Collector(enabled=False)
        col.instant("x")
        col.counter("y", 1.0)
        with col.span("z"):
            pass
        assert len(col.events()) == 0

    def test_enable_disable_round_trip(self):
        col = get_collector()
        before = len(col.events())
        obs.enable()
        try:
            col.instant("while_enabled")
        finally:
            obs.disable()
        col.instant("while_disabled")
        events = col.events()
        assert len(events) == before + 1
        assert events[-1].name == "while_enabled"
        col.clear()

    def test_disabled_span_is_shared_null_object(self):
        col = obs.Collector(enabled=False)
        assert col.span("a") is col.span("b")

    def test_span_args_writable_even_when_disabled(self):
        col = obs.Collector(enabled=False)
        with col.span("a") as span:
            span.args["changes"] = 3  # must not raise, must not record
        assert len(col.events()) == 0


class TestCollecting:
    def test_installs_and_restores_default(self):
        original = get_collector()
        with obs.collecting() as col:
            assert get_collector() is col
            assert col.enabled
        assert get_collector() is original

    def test_empty_collector_is_still_installed(self):
        # Regression: Collector defines __len__, so an empty collector is
        # falsy — `collector or default` silently dropped the caller's.
        mine = obs.Collector(enabled=True)
        assert len(mine.events()) == 0
        with obs.collecting(mine):
            assert get_collector() is mine

    def test_set_collector_returns_previous(self):
        original = get_collector()
        mine = obs.Collector(enabled=True)
        old = set_collector(mine)
        try:
            assert old is original
            assert get_collector() is mine
        finally:
            set_collector(original)


class TestSpans:
    def test_span_records_duration_and_args(self):
        with obs.collecting() as col:
            with col.span("work", cat="test", args={"k": "v"}) as span:
                span.args["extra"] = 1
        (event,) = col.events()
        assert event.kind == "span"
        assert event.name == "work"
        assert event.dur_ns >= 0
        assert event.args == {"k": "v", "extra": 1}

    def test_nesting_depth_and_containment(self):
        with obs.collecting() as col:
            with col.span("outer"):
                with col.span("inner"):
                    pass
        by_name = {e.name: e for e in col.events()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.depth == 0
        assert inner.depth == 1
        assert outer.ts_ns <= inner.ts_ns
        assert outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns

    def test_exception_recorded_and_propagated(self):
        with obs.collecting() as col:
            with pytest.raises(ValueError):
                with col.span("boom"):
                    raise ValueError("nope")
        (event,) = col.events()
        assert "ValueError" in event.args["error"]

    def test_depth_recovers_after_exception(self):
        with obs.collecting() as col:
            with pytest.raises(ValueError):
                with col.span("boom"):
                    raise ValueError
            with col.span("after"):
                pass
        assert {e.name: e.depth for e in col.events()}["after"] == 0


class TestCountersAndInstants:
    def test_counter_value(self):
        with obs.collecting() as col:
            col.counter("misses", 42, cat="sim", args={"level": "llc"})
        (event,) = col.events()
        assert event.kind == "counter"
        assert event.value == 42.0
        assert event.args == {"level": "llc"}

    def test_select_by_name_and_category(self):
        with obs.collecting() as col:
            col.instant("a", cat="compiler.decision")
            col.instant("b", cat="runtime.scheduler")
            col.instant("a", cat="compiler.decision")
        assert len(col.select(name="a")) == 2
        assert len(col.select(cat="compiler")) == 2
        assert len(col.select(name="b", cat="runtime")) == 1

    def test_to_dict_schema(self):
        with obs.collecting() as col:
            col.instant("i", args={"x": 1})
            col.counter("c", 2.0)
            with col.span("s"):
                pass
        instant, counter, span = col.events()
        assert {"name", "kind", "ts_ns", "cat", "tid"} <= set(instant.to_dict())
        assert counter.to_dict()["value"] == 2.0
        assert "dur_ns" in span.to_dict() and "depth" in span.to_dict()

    def test_clear(self):
        with obs.collecting() as col:
            col.instant("x")
            col.clear()
            assert len(col.events()) == 0


class TestThreads:
    def test_concurrent_emission_is_lossless(self):
        barrier = threading.Barrier(4)
        with obs.collecting() as col:
            def worker():
                barrier.wait()   # all threads alive at once: distinct tids
                for i in range(200):
                    col.instant("tick", args={"i": i})
                with col.span("thread_work"):
                    col.counter("n", 1)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        events = col.events()
        assert len(events) == 4 * 202
        # Each thread got its own stable small tid.
        tids = {e.tid for e in events}
        assert len(tids) == 4
        assert tids <= set(range(8))
