"""The run ledger: manifests, persistence, and regression diffing."""

import json

import pytest

from repro.obs.ledger import (
    MANIFEST_FORMAT,
    MANIFEST_SCHEMA_VERSION,
    LedgerSchemaError,
    MetricDelta,
    RunLedger,
    RunManifest,
    compare_runs,
    ledger_root,
    render_comparison,
)


def make_manifest(run_id="", energy=2.0, time=1.0, workload="w",
                  label="cfg") -> RunManifest:
    return RunManifest(
        run_id=run_id, kind="engine",
        spec={"key": "abc123", "scale": 1},
        stats={"cache_hits": 0},
        metrics={},
        workloads={
            workload: {
                "task_count": 4,
                "from_cache": False,
                "schedules": {
                    label: {
                        "summary": {
                            "time_s": time,
                            "energy_j": energy,
                            "edp_js": time * energy,
                        },
                        "relative_metrics": {
                            "time": 1.0, "energy": 1.0, "edp": 1.0,
                        },
                    },
                },
            },
        },
    )


class TestManifest:
    def test_round_trip(self):
        manifest = make_manifest(run_id="r1")
        again = RunManifest.from_dict(manifest.to_dict())
        assert again.to_dict() == manifest.to_dict()

    def test_new_manifests_carry_schema_version(self):
        doc = make_manifest().to_dict()
        assert doc["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert "format" not in doc

    def test_future_schema_version_rejected(self):
        doc = make_manifest().to_dict()
        doc["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        with pytest.raises(LedgerSchemaError):
            RunManifest.from_dict(doc)

    def test_non_integer_schema_version_rejected(self):
        doc = make_manifest().to_dict()
        doc["schema_version"] = "two"
        with pytest.raises(LedgerSchemaError):
            RunManifest.from_dict(doc)

    def test_legacy_format_1_manifest_upgraded(self):
        doc = make_manifest(run_id="old").to_dict()
        del doc["schema_version"]
        doc["format"] = MANIFEST_FORMAT  # pre-versioning marker
        manifest = RunManifest.from_dict(doc)
        assert manifest.upgraded is True
        assert manifest.schema_version == MANIFEST_SCHEMA_VERSION
        assert manifest.run_id == "old"
        # re-serialization writes the current schema
        assert manifest.to_dict()["schema_version"] == \
            MANIFEST_SCHEMA_VERSION

    def test_versionless_manifest_upgraded(self):
        doc = make_manifest(run_id="ancient").to_dict()
        del doc["schema_version"]
        manifest = RunManifest.from_dict(doc)
        assert manifest.upgraded is True
        assert manifest.workloads

    def test_unknown_legacy_format_rejected(self):
        doc = make_manifest().to_dict()
        del doc["schema_version"]
        doc["format"] = MANIFEST_FORMAT + 1
        with pytest.raises(LedgerSchemaError):
            RunManifest.from_dict(doc)

    def test_compare_runs_rejects_future_version(self):
        base = make_manifest(run_id="a")
        new = make_manifest(run_id="b")
        new.schema_version = MANIFEST_SCHEMA_VERSION + 1
        with pytest.raises(LedgerSchemaError):
            compare_runs(base, new)

    def test_summary_line(self):
        line = make_manifest(run_id="r1").summary_line()
        assert line["run_id"] == "r1"
        assert line["workloads"] == ["w"]
        assert line["spec_key"] == "abc123"


class TestLedgerRoot:
    def test_explicit_root_wins(self, tmp_path):
        assert ledger_root(tmp_path) == tmp_path

    def test_env_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert ledger_root() == tmp_path / "runs"


class TestLedger:
    def test_record_assigns_id_and_appends_index(self, tmp_path):
        ledger = RunLedger(tmp_path)
        path = ledger.record(make_manifest())
        assert path.exists()
        entries = ledger.entries()
        assert len(entries) == 1
        assert entries[0]["run_id"] == path.stem
        # Recorded files are valid manifests.
        RunManifest.from_dict(json.loads(path.read_text()))

    def test_append_only(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first = ledger.record(make_manifest())
        second = ledger.record(make_manifest())
        assert first != second
        assert len(ledger.entries()) == 2
        assert first.exists() and second.exists()

    def test_load_by_id_prefix_latest_and_path(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(make_manifest(run_id="20250101T000000-engine-aaaa"))
        path = ledger.record(
            make_manifest(run_id="20250202T000000-engine-bbbb")
        )
        assert ledger.load(
            "20250101T000000-engine-aaaa"
        ).run_id.endswith("aaaa")
        assert ledger.load("20250202").run_id.endswith("bbbb")
        assert ledger.load("latest").run_id.endswith("bbbb")
        assert ledger.load(str(path)).run_id.endswith("bbbb")

    def test_ambiguous_prefix_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(make_manifest(run_id="run-a1"))
        ledger.record(make_manifest(run_id="run-a2"))
        with pytest.raises(ValueError):
            ledger.load("run-a")

    def test_missing_ref_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with pytest.raises(FileNotFoundError):
            ledger.load("nope")
        with pytest.raises(FileNotFoundError):
            ledger.load("latest")

    def test_colliding_run_ids_get_suffixes(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first = RunManifest(kind="engine", spec={"key": "abc123"},
                            created="2025-01-01T00:00:00+00:00")
        second = RunManifest(kind="engine", spec={"key": "abc123"},
                             created="2025-01-01T00:00:00+00:00")
        ledger.record(first)
        ledger.record(second)
        assert first.run_id != second.run_id
        assert second.run_id.startswith(first.run_id)

    def test_torn_index_line_is_tolerated(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(make_manifest(run_id="ok"))
        with open(ledger.index_path, "a") as handle:
            handle.write('{"run_id": "torn')  # no newline, invalid JSON
        assert ledger.run_ids() == ["ok"]


class TestCompare:
    def test_identical_runs_compare_clean(self):
        comparison = compare_runs(
            make_manifest(run_id="a"), make_manifest(run_id="b"),
        )
        assert comparison.identical
        assert comparison.ok
        assert not comparison.regressions
        assert len(comparison.deltas) == 3  # time, energy, edp

    def test_ten_percent_energy_inflation_is_a_regression(self):
        base = make_manifest(run_id="a", energy=2.0)
        new = make_manifest(run_id="b", energy=2.2)
        comparison = compare_runs(base, new, threshold_pct=5.0)
        assert not comparison.ok
        regressed = {d.metric for d in comparison.regressions}
        assert regressed == {"energy", "edp"}
        for delta in comparison.regressions:
            assert delta.pct == pytest.approx(10.0)

    def test_threshold_gates_the_verdict(self):
        base = make_manifest(run_id="a", energy=2.0)
        new = make_manifest(run_id="b", energy=2.2)
        assert compare_runs(base, new, threshold_pct=15.0).ok
        assert not compare_runs(base, new, threshold_pct=5.0).ok

    def test_improvement_is_not_a_regression(self):
        base = make_manifest(run_id="a", time=1.0)
        new = make_manifest(run_id="b", time=0.5)
        comparison = compare_runs(base, new)
        assert comparison.ok
        assert {d.metric for d in comparison.improvements} == {"time", "edp"}

    def test_metric_subset(self):
        base = make_manifest(run_id="a", energy=2.0)
        new = make_manifest(run_id="b", energy=2.2)
        comparison = compare_runs(base, new, metrics=("time",))
        assert comparison.ok
        assert len(comparison.deltas) == 1

    def test_missing_workload_fails_the_gate(self):
        base = make_manifest(run_id="a")
        new = make_manifest(run_id="b", workload="other")
        comparison = compare_runs(base, new)
        assert not comparison.ok
        assert len(comparison.missing) == 2
        assert not comparison.deltas

    def test_missing_configuration_fails_the_gate(self):
        base = make_manifest(run_id="a", label="cfg")
        new = make_manifest(run_id="b", label="cfg2")
        comparison = compare_runs(base, new)
        assert not comparison.ok
        assert comparison.missing == ["w / cfg", "w / cfg2"]

    def test_appearing_from_zero_is_infinite(self):
        delta = MetricDelta("w", "cfg", "time", base=0.0, new=1.0)
        assert delta.pct == float("inf")
        assert delta.regressed(5.0)
        assert MetricDelta("w", "cfg", "time", 0.0, 0.0).pct == 0.0


class TestRender:
    def test_identical_report(self):
        comparison = compare_runs(
            make_manifest(run_id="a"), make_manifest(run_id="b"),
        )
        text = render_comparison(comparison)
        assert "identical" in text
        assert "**PASS**" in text

    def test_regression_report(self):
        comparison = compare_runs(
            make_manifest(run_id="a", energy=2.0),
            make_manifest(run_id="b", energy=2.2),
        )
        text = render_comparison(comparison)
        assert "**REGRESSION**" in text
        assert "**FAIL**" in text
        assert "+10.00%" in text
        assert "| workload |" in text  # markdown table header
