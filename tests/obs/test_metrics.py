"""The typed metrics registry: counters, gauges, histograms."""

import threading

import pytest

from repro.obs.events import Collector
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(7)
        assert counter.snapshot() == {"kind": "counter", "value": 7.0}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0
        assert gauge.snapshot() == {"kind": "gauge", "value": 13.0}


class TestHistogram:
    def test_buckets_are_cumulative_bounds(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(56.2)
        assert snap["min"] == 0.5 and snap["max"] == 50.0
        assert snap["buckets"] == {"le_1": 2, "le_10": 1, "le_inf": 1}

    def test_mean(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.mean == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == 3.0

    def test_empty_snapshot_has_no_min_max(self):
        snap = Histogram("h").snapshot()
        assert "min" not in snap and "max" not in snap
        assert snap["buckets"] == {}

    def test_rejects_duplicate_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_unsorted_bounds_are_sorted(self):
        hist = Histogram("h", buckets=(10.0, 1.0))
        assert hist.bounds == (1.0, 10.0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_kind_mismatch_is_typeerror(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_inspection(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2
        assert "a" in registry and "missing" not in registry
        assert registry.get("missing") is None
        registry.clear()
        assert len(registry) == 0

    def test_snapshot_is_sorted_and_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(2)
        registry.histogram("c", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == ["a", "b", "c"]
        json.dumps(snap)  # must not raise

    def test_concurrent_creation_yields_one_metric(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(4)
        seen = []

        def create():
            barrier.wait()
            seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=create) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(metric) for metric in seen}) == 1


class TestFromEvents:
    def test_folds_counters_spans_and_instants(self):
        collector = Collector(enabled=True)
        collector.counter("cache.hits", 3)
        collector.counter("cache.hits", 5)
        with collector.span("pass.run", cat="compiler.pass"):
            pass
        collector.instant("decision")
        registry = MetricsRegistry.from_events(collector.events())
        assert registry.counter("cache.hits").value == 8.0
        assert registry.histogram("cache.hits.samples").count == 2
        assert registry.histogram("pass.run.ms").count == 1
        assert registry.counter("decision").value == 1.0

    def test_negative_counter_samples_do_not_break_the_sum(self):
        collector = Collector(enabled=True)
        collector.counter("delta", -2.0)
        registry = MetricsRegistry.from_events(collector.events())
        assert registry.counter("delta").value == 0.0
        assert registry.histogram("delta.samples").min == -2.0


class TestGlobalRegistry:
    def test_set_registry_swaps_and_restores(self):
        fresh = MetricsRegistry()
        old = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(old)
        assert get_registry() is old
