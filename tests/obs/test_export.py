"""Exporter schemas: Chrome trace_event JSON and JSONL."""

import json

from repro import obs
from repro.obs.export import COMPILER_PID, SCHEDULER_PID_BASE


def collect_sample():
    with obs.collecting() as col:
        with col.span("pipeline.optimize", cat="compiler",
                      args={"function": "t"}):
            with col.span("pass.gvn", cat="compiler.pass") as span:
                span.args["changes"] = 2
        col.instant("access_phase.decision", cat="compiler.decision",
                    args={"task": "t", "method": "affine"})
        col.counter("phase.instructions", 123, cat="runtime.phase",
                    args={"task": "t", "trace": {"flops": 7}})
    timeline = obs.Timeline(scheme="dae", policy="optimal")
    timeline.add(0, "access", 0.0, 100.0, task="t", freq_ghz=1.6)
    timeline.add(0, "execute", 100.0, 300.0, task="t", freq_ghz=3.4)
    timeline.add(1, "idle", 0.0, 300.0)
    return col.events(), [timeline]


class TestChromeTrace:
    def test_document_shape_and_required_keys(self):
        events, timelines = collect_sample()
        doc = obs.to_chrome_trace(events, timelines)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for entry in doc["traceEvents"]:
            assert {"ph", "ts", "pid", "tid"} <= set(entry), entry
            assert "name" in entry

    def test_round_trips_through_json(self):
        events, timelines = collect_sample()
        doc = json.loads(json.dumps(obs.to_chrome_trace(events, timelines)))
        assert doc["traceEvents"]

    def test_ts_monotone_per_track(self):
        events, timelines = collect_sample()
        doc = obs.to_chrome_trace(events, timelines)
        tracks = {}
        for entry in doc["traceEvents"]:
            if entry["ph"] == "M":
                continue
            tracks.setdefault((entry["pid"], entry["tid"]), []).append(
                entry["ts"]
            )
        assert tracks
        for stamps in tracks.values():
            assert stamps == sorted(stamps)

    def test_pids_split_compiler_and_scheduler(self):
        events, timelines = collect_sample()
        doc = obs.to_chrome_trace(events, timelines)
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert COMPILER_PID in pids
        assert SCHEDULER_PID_BASE in pids

    def test_phase_kinds(self):
        events, timelines = collect_sample()
        doc = obs.to_chrome_trace(events, timelines)
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "i", "C"} <= phs

    def test_counter_args_numeric_only(self):
        events, _ = collect_sample()
        doc = obs.to_chrome_trace(events)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        for counter in counters:
            for value in counter["args"].values():
                assert isinstance(value, (int, float))

    def test_write_chrome_trace(self, tmp_path):
        events, timelines = collect_sample()
        path = obs.write_chrome_trace(
            str(tmp_path / "out.trace.json"), events, timelines
        )
        doc = json.load(open(path))
        assert doc["traceEvents"]


class TestJsonl:
    def test_one_valid_object_per_line(self):
        events, _ = collect_sample()
        text = obs.to_jsonl(events)
        lines = text.strip().split("\n")
        assert len(lines) == len(events)
        parsed = [json.loads(line) for line in lines]
        for obj in parsed:
            assert {"name", "kind", "ts_ns", "cat", "tid"} <= set(obj)

    def test_full_args_survive_jsonl(self):
        events, _ = collect_sample()
        rows = [json.loads(l) for l in obs.to_jsonl(events).splitlines()]
        counter = next(r for r in rows if r["kind"] == "counter")
        # Non-numeric args are dropped from the Chrome export but kept here.
        assert counter["args"]["trace"] == {"flops": 7}

    def test_write_jsonl(self, tmp_path):
        events, _ = collect_sample()
        path = obs.write_jsonl(str(tmp_path / "events.jsonl"), events)
        assert sum(1 for _ in open(path)) == len(events)
