"""Differential suite: the fast interpreter is bit-identical to the
reference.

The reference :class:`~repro.interp.interpreter.Interpreter` is the
executable specification; :class:`~repro.interp.fast.FastInterpreter`
re-implements it over pre-decoded records for speed.  These tests pin
the equivalence the fast core's docstring promises: identical dynamic
instruction counts, identical memory-event streams (kind, address,
size, *order*), identical end-of-run memory, and byte-identical
:class:`~repro.sim.timing.PhaseProfile` serializations on every bundled
workload under every scheme — plus the awkward corners (undef
propagation, IEEE division, phi parallel moves, step limits, calls)
exercised head-to-head.
"""

import math

import pytest

from repro.engine.products import ALL_SCHEMES, phase_to_dict, profile_workload
from repro.frontend import compile_source
from repro.interp import (
    FastInterpreter,
    InterpError,
    Interpreter,
    MemoryError_,
    SimMemory,
    decode_function,
    decode_stats,
    invalidate_decode,
    resolve_interp,
)
from repro.ir import (
    BOOL,
    F64,
    I64,
    VOID,
    Constant,
    Function,
    IRBuilder,
    Undef,
    pointer_to,
)
from repro.sim.config import MachineConfig
from repro.workloads import ALL_WORKLOADS, workload_by_name

#: Workloads cheap enough to re-run per-task for full event-stream and
#: memory-image comparison (the larger ones are covered by the profile
#: matrix below).
SMALL_WORKLOADS = ("cg", "cigar", "lbm", "libq")


def _trace_key(trace):
    return {
        "instructions": trace.instructions,
        "by_opcode": dict(trace.by_opcode),
        "mem_events": trace.mem_events,
        "dropped_prefetches": trace.dropped_prefetches,
        "return_value": trace.return_value,
    }


def _run_both(func, args, *, memories=None):
    """Run ``func`` under both interpreters on twin memories; return
    ``(ref_trace, fast_trace, ref_events, fast_events, ref_mem,
    fast_mem)`` with the traces already asserted equal."""
    ref_mem, fast_mem = memories if memories else (SimMemory(), SimMemory())
    ref_events, fast_events = [], []
    ref_trace = Interpreter(
        ref_mem,
        observer=lambda e: ref_events.append((e.kind, e.address, e.size)),
    ).run(func, list(args))
    fast_trace = FastInterpreter(
        fast_mem,
        sink=lambda kind, address, size: fast_events.append(
            (kind, address, size)
        ),
    ).run(func, list(args))
    assert _trace_key(ref_trace) == _trace_key(fast_trace)
    assert ref_events == fast_events
    assert ref_mem._cells == fast_mem._cells
    return ref_trace, fast_trace, ref_events, fast_events, ref_mem, fast_mem


# -- the tentpole guarantee: whole-workload profile identity -------------------


@pytest.mark.parametrize(
    "workload_cls", ALL_WORKLOADS, ids=lambda cls: cls().name,
)
def test_profiles_byte_identical(workload_cls):
    """Every bundled workload, every scheme: the engine's serialized
    profiles (the exact dict the cache stores and every figure reads)
    are equal between the two interpreters."""
    config = MachineConfig()
    ref = profile_workload(workload_cls(), 1, config, interp="reference")
    fast = profile_workload(workload_cls(), 1, config, interp="fast")
    assert set(ref.profiles) == set(fast.profiles) == {
        s.value for s in ALL_SCHEMES
    }
    for scheme, ref_stream in ref.profiles.items():
        fast_stream = fast.profiles[scheme]
        assert len(ref_stream.tasks) == len(fast_stream.tasks)
        for ref_task, fast_task in zip(ref_stream.tasks, fast_stream.tasks):
            assert ref_task.instance.name == fast_task.instance.name
            assert phase_to_dict(ref_task.execute) == phase_to_dict(
                fast_task.execute
            ), (scheme, ref_task.instance.name)
            if ref_task.access is None:
                assert fast_task.access is None
            else:
                assert phase_to_dict(ref_task.access) == phase_to_dict(
                    fast_task.access
                ), (scheme, ref_task.instance.name)


@pytest.mark.parametrize("name", SMALL_WORKLOADS)
def test_event_streams_and_memory_identical(name):
    """Task by task, the full (kind, address, size) event stream and the
    end-of-run memory image match on the smaller workloads."""
    streams = {}
    cells = {}
    for kind in ("reference", "fast"):
        workload = workload_by_name(name)
        compiled = workload.compile(None)
        memory, tasks, _ = workload.instantiate(scale=1, compiled=compiled)
        events = []
        if kind == "fast":
            interp = FastInterpreter(
                memory,
                sink=lambda k, a, s: events.append((k, a, s)),
            )
        else:
            interp = Interpreter(
                memory,
                observer=lambda e: events.append((e.kind, e.address, e.size)),
            )
        for task in tasks:
            access = task.kind.access
            if access is not None:
                interp.run(access, list(task.args))
            interp.run(task.kind.execute, list(task.args))
        streams[kind] = events
        cells[kind] = dict(memory._cells)
    assert streams["reference"] == streams["fast"]
    assert cells["reference"] == cells["fast"]


# -- corner-for-corner semantics ----------------------------------------------


class TestUndefCorners:
    def test_prefetch_of_undef_dropped_in_both(self):
        func = Function("p", [], [], VOID)
        b = IRBuilder(func.add_block("entry"))
        b.prefetch(Undef(pointer_to(F64)))
        b.ret()
        ref, fast, ref_events, *_ = _run_both(func, [])
        assert ref.dropped_prefetches == fast.dropped_prefetches == 1
        assert ref_events == []

    def test_store_to_undef_address_fully_skipped(self):
        func = Function("s", [], [], VOID)
        b = IRBuilder(func.add_block("entry"))
        b.store(Constant(F64, 1.5), Undef(pointer_to(F64)))
        b.ret()
        ref, fast, ref_events, *_ = _run_both(func, [])
        assert ref.mem_events == fast.mem_events == 0
        assert ref_events == []

    def test_store_of_undef_value_emits_event_but_no_write(self):
        func = Function("s", [pointer_to(F64)], ["p"], VOID)
        b = IRBuilder(func.add_block("entry"))
        b.store(Undef(F64), func.args[0])
        b.ret()
        ref_mem, fast_mem = SimMemory(), SimMemory()
        args = [ref_mem.alloc_array(8, 1, "A")]
        assert args[0] == fast_mem.alloc_array(8, 1, "A")
        ref, fast, ref_events, *_ = _run_both(
            func, args, memories=(ref_mem, fast_mem),
        )
        assert ref.mem_events == fast.mem_events == 1
        assert ref_events == [("store", args[0], 8)]
        assert ref_mem._cells == {}

    def test_branch_on_undef_same_error(self):
        func = Function("f", [], [], VOID)
        entry = func.add_block("entry")
        t, e = func.add_block("t"), func.add_block("e")
        b = IRBuilder(entry)
        b.condbr(Undef(BOOL), t, e)
        for block in (t, e):
            b.set_block(block)
            b.ret()
        messages = []
        for interp in (Interpreter(SimMemory()),
                       FastInterpreter(SimMemory())):
            with pytest.raises(InterpError) as excinfo:
                interp.run(func, [])
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1] == "branch on undef in f"

    def test_undef_propagates_through_arithmetic(self):
        # Direct IR — the frontend would spill the argument through an
        # alloca, and a load of a skipped undef store reads back 0.0.
        func = Function("f", [F64], ["x"], F64)
        b = IRBuilder(func.add_block("entry"))
        doubled = b.binop("fmul", func.args[0], Constant(F64, 2.0), "d")
        b.ret(b.binop("fadd", doubled, Constant(F64, 1.0), "r"))
        from repro.interp import UNDEF
        ref = Interpreter(SimMemory()).run(func, [UNDEF])
        fast = FastInterpreter(SimMemory()).run(func, [UNDEF])
        assert ref.return_value is UNDEF
        assert fast.return_value is UNDEF


class TestArithmeticCorners:
    @pytest.mark.parametrize("numerator,expected", [
        (1.0, math.inf), (-1.0, -math.inf),
    ])
    def test_fdiv_by_zero_signed_infinity(self, numerator, expected):
        func = compile_source(
            "func f(a: f64, b: f64) -> f64 { return a / b; }"
        ).function("f")
        ref = Interpreter(SimMemory()).run(func, [numerator, 0.0])
        fast = FastInterpreter(SimMemory()).run(func, [numerator, 0.0])
        assert ref.return_value == fast.return_value == expected

    def test_fdiv_zero_by_zero_is_nan_in_both(self):
        func = compile_source(
            "func f(a: f64, b: f64) -> f64 { return a / b; }"
        ).function("f")
        ref = Interpreter(SimMemory()).run(func, [0.0, 0.0])
        fast = FastInterpreter(SimMemory()).run(func, [0.0, 0.0])
        assert math.isnan(ref.return_value)
        assert math.isnan(fast.return_value)

    @pytest.mark.parametrize("op,message", [
        ("/", "integer division by zero"),
        ("%", "integer remainder by zero"),
    ])
    def test_integer_division_by_zero_same_message(self, op, message):
        func = compile_source(
            "func f(a: i64) -> i64 { return 7 %s a; }" % op
        ).function("f")
        for make in (Interpreter, FastInterpreter):
            with pytest.raises(InterpError) as excinfo:
                make(SimMemory()).run(func, [0])
            assert str(excinfo.value) == message

    def test_truncating_signed_division(self):
        # Python's // floors; the IR sdiv truncates toward zero.  Every
        # sign combination must agree between the two interpreters.
        func = compile_source(
            "func f(a: i64, b: i64) -> i64 { return a / b; }"
        ).function("f")
        for a, b in [(7, 2), (-7, 2), (7, -2), (-7, -2)]:
            ref = Interpreter(SimMemory()).run(func, [a, b])
            fast = FastInterpreter(SimMemory()).run(func, [a, b])
            assert ref.return_value == fast.return_value


class TestControlFlowCorners:
    def test_phi_parallel_swap(self):
        """Two phis feeding each other must read old values (a parallel
        move); sequential assignment would collapse them."""
        func = Function("swap", [I64], ["n"], I64)
        entry = func.add_block("entry")
        loop = func.add_block("loop")
        done = func.add_block("done")
        b = IRBuilder(entry)
        b.jump(loop)
        b.set_block(loop)
        first = b.phi(I64, "a")
        second = b.phi(I64, "b")
        counter = b.phi(I64, "i")
        nxt = b.add(counter, Constant(I64, 1), "i.next")
        cond = b.cmp("slt", nxt, func.args[0], "more")
        b.condbr(cond, loop, done)
        first.add_incoming(Constant(I64, 1), entry)
        first.add_incoming(second, loop)
        second.add_incoming(Constant(I64, 2), entry)
        second.add_incoming(first, loop)
        counter.add_incoming(Constant(I64, 0), entry)
        counter.add_incoming(nxt, loop)
        b.set_block(done)
        packed = b.add(
            b.mul(first, Constant(I64, 10), "hi"), second, "packed",
        )
        b.ret(packed)
        for n in (1, 2, 5, 6):
            ref, fast, *_ = _run_both(func, [n])
            # Odd iteration counts leave (1, 2); even leave (2, 1).
            assert ref.return_value == (12 if n % 2 else 21)

    def test_step_limit_same_error(self):
        func = compile_source(
            "task t(n: i64) { while (n > 0) { n = n + 1; } }"
        ).function("t")
        for make in (Interpreter, FastInterpreter):
            with pytest.raises(InterpError) as excinfo:
                make(SimMemory(), max_steps=1000).run(func, [1])
            assert str(excinfo.value) == "interpreter step limit exceeded"

    def test_arg_count_same_error(self):
        func = compile_source("task t(n: i64) { }").function("t")
        for make in (Interpreter, FastInterpreter):
            with pytest.raises(InterpError) as excinfo:
                make(SimMemory()).run(func, [])
            assert str(excinfo.value) == "t expects 1 args, got 0"

    def test_nonvoid_call_merges_counts(self):
        callee = Function("inc", [I64], ["x"], I64)
        cb = IRBuilder(callee.add_block("entry"))
        cb.ret(cb.add(callee.args[0], Constant(I64, 1), "x1"))
        caller = Function("main", [I64], ["x"], I64)
        mb = IRBuilder(caller.add_block("entry"))
        mb.ret(mb.call(callee, [caller.args[0]], "r"))
        ref, fast, *_ = _run_both(caller, [41])
        assert ref.return_value == 42
        assert ref.count("call") == fast.count("call") == 1
        assert ref.count("add") == fast.count("add") == 1

    def test_void_call(self):
        callee = Function("nop", [], [], VOID)
        IRBuilder(callee.add_block("entry")).ret()
        caller = Function("main", [], [], VOID)
        mb = IRBuilder(caller.add_block("entry"))
        mb.call(callee, [])
        mb.ret()
        ref, fast, *_ = _run_both(caller, [])
        assert ref.return_value is None and fast.return_value is None

    def test_bounds_violation_same_error(self):
        func = compile_source(
            "task t(A: f64*) { A[0] = 1.0; }"
        ).function("t")
        for make in (Interpreter, FastInterpreter):
            with pytest.raises(MemoryError_):
                make(SimMemory()).run(func, [0x10])


# -- the decode cache ----------------------------------------------------------


class TestDecodeCache:
    def test_second_run_hits_cache(self):
        func = compile_source(
            "func f(x: i64) -> i64 { return x + 1; }"
        ).function("f")
        invalidate_decode(func)
        before = decode_stats()
        interp = FastInterpreter(SimMemory())
        interp.run(func, [1])
        interp.run(func, [2])
        after = decode_stats()
        assert after["misses"] - before["misses"] == 1
        assert after["hits"] - before["hits"] >= 1

    def test_invalidate_forces_redecode(self):
        func = compile_source(
            "func f(x: i64) -> i64 { return x + 1; }"
        ).function("f")
        first = decode_function(func)
        assert decode_function(func) is first
        invalidate_decode(func)
        assert decode_function(func) is not first

    def test_resolve_interp(self, monkeypatch):
        monkeypatch.delenv("REPRO_INTERP", raising=False)
        assert resolve_interp(None) == "replay"
        assert resolve_interp("fast") == "fast"
        assert resolve_interp("reference") == "reference"
        monkeypatch.setenv("REPRO_INTERP", "reference")
        assert resolve_interp(None) == "reference"
        with pytest.raises(ValueError):
            resolve_interp("turbo")
