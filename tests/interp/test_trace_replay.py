"""Differential suite: record/replay profiling is byte-identical to
direct interpretation.

The record/replay engine (``interp="replay"``) interprets each execute
phase once — in the first scheme of the matrix — and replays the
recorded event trace through the cache model for every other scheme.
These tests pin the promise that this is *unobservable* in the results:
the serialized profile payload (the exact dict the engine cache stores
and every figure reads) is equal to a full per-scheme interpretation on
every bundled workload, and every guard that protects the invariant
(access-phase stores, donor poisoning, memory deltas, alloca,
out-of-range addresses) falls back to interpretation rather than
producing subtly wrong numbers.
"""

import json

import pytest

from repro.engine.pool import run_experiment
from repro.engine.products import (
    ALL_SCHEMES,
    phase_to_dict,
    profile_workload,
    run_to_payload,
)
from repro.engine.spec import ExperimentSpec
from repro.interp import PhaseTrace, SimMemory, TraceStore
from repro.ir import F64, I64, VOID, Constant, Function, IRBuilder, pointer_to
from repro.runtime.profiler import TaskStreamProfiler, replay_stream
from repro.runtime.task import Scheme, TaskInstance, TaskKind
from repro.sim.config import CacheConfig, MachineConfig
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import PaperRow, Workload, fill_floats


def _payload_text(run) -> str:
    return json.dumps(run_to_payload(run), sort_keys=True)


# -- custom workloads (module level: the Workload protocol) --------------------


class ManualStoreWorkload(Workload):
    """A manual access version that *stores* (violating the pure-
    prefetch invariant) — the profiler must fall back to interpreting
    every execute phase of (and after) the offending scheme."""

    name = "manual-store"
    paper = PaperRow(1, 1, 1, 0.0, 0.0)
    elems = 24
    chunks = 3

    def source(self) -> str:
        return """
task mstore(A: f64*, n: i64) {
  var i: i64;
  var s: f64;
  s = 0.0;
  for (i = 0; i < n; i = i + 1) {
    s = s + A[i];
  }
  A[0] = s;
}

task mstore_manual_access(A: f64*, n: i64) {
  var i: i64;
  for (i = 0; i < n; i = i + 1) {
    A[i] = A[i];
    prefetch(A[i]);
  }
}
"""

    def build(self, memory, scale, kinds):
        n = self.elems * scale
        a = memory.alloc_array(8, n, "A", init=fill_floats(n))
        return [
            TaskInstance(kinds["mstore"], [a, n])
            for _ in range(self.chunks)
        ]


class DeltaDependencyWorkload(Workload):
    """Task 2's access phase chases an index array task 1's execute
    phase *wrote* — correct only if replayed phases reproduce their
    memory writes (the trace's ``delta``)."""

    name = "delta-dep"
    paper = PaperRow(2, 2, 2, 0.0, 0.0)
    elems = 32

    def source(self) -> str:
        return """
task build_index(B: i64*, n: i64) {
  var i: i64;
  for (i = 0; i < n; i = i + 1) {
    B[i] = n - 1 - i;
  }
}

task gather(A: f64*, B: i64*, n: i64) {
  var i: i64;
  var s: f64;
  s = 0.0;
  for (i = 0; i < n; i = i + 1) {
    s = s + A[B[i]];
  }
  A[0] = s;
}
"""

    def build(self, memory, scale, kinds):
        n = self.elems * scale
        a = memory.alloc_array(8, n, "A", init=fill_floats(n))
        b = memory.alloc_array(8, n, "B")
        return [
            TaskInstance(kinds["build_index"], [b, n]),
            TaskInstance(kinds["gather"], [a, b, n]),
        ]


# -- the tentpole guarantee: whole-matrix payload identity ---------------------


@pytest.mark.parametrize(
    "workload_cls", ALL_WORKLOADS, ids=lambda cls: cls().name,
)
def test_replayed_profiles_byte_identical(workload_cls):
    """Every bundled workload, full three-scheme matrix: replay and
    direct interpretation serialize to the same bytes, and replay
    actually replayed (it is not silently interpreting everything)."""
    config = MachineConfig()
    fast = profile_workload(workload_cls(), 1, config, interp="fast")
    store = TraceStore()
    replayed = profile_workload(
        workload_cls(), 1, config, interp="replay", trace_store=store,
    )
    assert _payload_text(fast) == _payload_text(replayed)
    # Two non-donor schemes, every execute phase shareable.
    assert store.replayed_phases > 0
    assert store.replayed_events > 0


def test_replay_is_the_default_and_autocreates_a_store():
    """``interp=None`` resolves to replay and profiles multi-scheme
    matrices via an internal TraceStore — byte-identical to fast."""
    workload_cls = ALL_WORKLOADS[0]
    fast = profile_workload(workload_cls(), interp="fast")
    default = profile_workload(workload_cls())
    assert _payload_text(fast) == _payload_text(default)


def test_single_scheme_matrix_matches_fast():
    """With one scheme there is nothing to reuse; replay degrades to
    plain fast interpretation."""
    workload_cls = ALL_WORKLOADS[0]
    fast = profile_workload(
        workload_cls(), interp="fast", schemes=(Scheme.DAE,),
    )
    replayed = profile_workload(
        workload_cls(), interp="replay", schemes=(Scheme.DAE,),
    )
    assert _payload_text(fast) == _payload_text(replayed)


def test_fast_with_explicit_store_is_record_only():
    """``interp="fast"`` + a TraceStore records traces but never
    replays — the benchmark's interpreted leg stays pure."""
    store = TraceStore()
    workload_cls = ALL_WORKLOADS[0]
    fast = profile_workload(
        workload_cls(), interp="fast", trace_store=store,
    )
    reference = profile_workload(workload_cls(), interp="fast")
    assert _payload_text(fast) == _payload_text(reference)
    assert store.recorded_phases > 0
    assert store.replayed_phases == 0


# -- invariant guards ----------------------------------------------------------


def test_manual_access_store_disables_reuse_consumer_side():
    """Donor (CAE) is clean, but MANUAL's own access phases store:
    every MANUAL execute must re-interpret — and the numbers still
    match direct interpretation exactly."""
    schemes = (Scheme.CAE, Scheme.MANUAL)
    fast = profile_workload(
        ManualStoreWorkload(), interp="fast", schemes=schemes,
    )
    store = TraceStore()
    replayed = profile_workload(
        ManualStoreWorkload(), interp="replay", schemes=schemes,
        trace_store=store,
    )
    assert _payload_text(fast) == _payload_text(replayed)
    assert store.replayed_phases == 0
    assert all(
        task.access.stores > 0 for task in store.schemes["manual"]
    )


def test_manual_access_store_poisons_donor_side():
    """MANUAL records first (its access stores), so its execute traces
    are unshareable; CAE must interpret rather than replay them."""
    schemes = (Scheme.MANUAL, Scheme.CAE)
    fast = profile_workload(
        ManualStoreWorkload(), interp="fast", schemes=schemes,
    )
    store = TraceStore()
    replayed = profile_workload(
        ManualStoreWorkload(), interp="replay", schemes=schemes,
        trace_store=store,
    )
    assert _payload_text(fast) == _payload_text(replayed)
    assert store.replayed_phases == 0
    assert not any(
        task.execute.shareable for task in store.schemes["manual"]
    )


def test_memory_delta_feeds_later_interpreted_phases():
    """DAE replays task 1's execute from the CAE recording; task 2's
    *interpreted* access phase then reads the index array task 1 wrote.
    Identical payloads prove the replay applied the memory delta."""
    workload = DeltaDependencyWorkload()
    fast = profile_workload(workload, interp="fast")
    store = TraceStore()
    replayed = profile_workload(
        workload, interp="replay", trace_store=store,
    )
    assert _payload_text(fast) == _payload_text(replayed)
    assert store.replayed_phases > 0
    build = store.schemes["cae"][0]
    assert build.name == "build_index"
    assert build.execute.stores == DeltaDependencyWorkload.elems
    assert len(build.execute.delta) == DeltaDependencyWorkload.elems


# -- profiler-level fallbacks (direct IR) --------------------------------------


def _alloca_kind() -> TaskKind:
    func = Function("alloc_task", [pointer_to(F64), I64], ["A", "n"], VOID)
    b = IRBuilder(func.add_block("entry"))
    slot = b.alloca(F64, "tmp")
    b.store(Constant(F64, 1.5), slot)
    b.store(b.load(slot, "v"), func.args[0])
    b.ret()
    return TaskKind("alloc_task", execute=func)


def _overflow_kind() -> TaskKind:
    # A prefetch of A + 2**61 * 8 — beyond the signed 64-bit range the
    # packed array accepts, though the cache model simulates it fine.
    func = Function("huge_prefetch", [pointer_to(F64)], ["A"], VOID)
    b = IRBuilder(func.add_block("entry"))
    b.prefetch(b.gep(func.args[0], Constant(I64, 2 ** 61), "p"))
    b.store(Constant(F64, 2.0), func.args[0])
    b.ret()
    return TaskKind("huge_prefetch", execute=func)


def _profile_matrix(make_kind, interp, store=None):
    """Profile two instances of ``make_kind()`` under CAE then DAE on
    fresh memory per scheme (mirroring profile_workload)."""
    config = MachineConfig()
    result = {}
    for scheme in (Scheme.CAE, Scheme.DAE):
        memory = SimMemory()
        kind = make_kind()
        a = memory.alloc_array(8, 4, "A", init=fill_floats(4))
        tasks = [TaskInstance(kind, [a, 4]) if len(kind.execute.args) == 2
                 else TaskInstance(kind, [a]) for _ in range(2)]
        profiler = TaskStreamProfiler(memory, config, interp=interp)
        stream = profiler.profile(tasks, scheme, trace_store=store)
        result[scheme.value] = [
            phase_to_dict(task.execute) for task in stream.tasks
        ]
    return result


def test_alloca_phase_records_as_non_replayable():
    store = TraceStore()
    replayed = _profile_matrix(_alloca_kind, "replay", store)
    fast = _profile_matrix(_alloca_kind, "fast")
    assert replayed == fast
    assert store.replayed_phases == 0
    trace = store.schemes["cae"][0].execute
    assert not trace.valid
    assert trace.by_opcode.get("alloca", 0) > 0
    # The rest of the record stays meaningful for the fallback path.
    assert trace.instructions > 0


def test_out_of_range_address_records_as_non_replayable():
    store = TraceStore()
    replayed = _profile_matrix(_overflow_kind, "replay", store)
    fast = _profile_matrix(_overflow_kind, "fast")
    assert replayed == fast
    assert store.replayed_phases == 0
    assert not store.schemes["cae"][0].execute.valid
    assert not store.fully_replayable()


# -- replay_stream (the ablation path) -----------------------------------------


def test_replay_stream_reproduces_the_recorded_profiles():
    """Replaying a recorded scheme under the *same* config rebuilds the
    identical profile stream, task names included."""
    config = MachineConfig()
    store = TraceStore()
    run = profile_workload(
        ALL_WORKLOADS[0](), 1, config, interp="replay", trace_store=store,
    )
    assert store.fully_replayable()
    for scheme, stream in run.profiles.items():
        rebuilt = replay_stream(store.schemes[scheme], scheme, config)
        assert len(rebuilt.tasks) == len(stream.tasks)
        for original, copy in zip(stream.tasks, rebuilt.tasks):
            assert original.instance.name == copy.instance.name
            assert phase_to_dict(original.execute) == phase_to_dict(
                copy.execute
            )
            if original.access is None:
                assert copy.access is None
            else:
                assert phase_to_dict(original.access) == phase_to_dict(
                    copy.access
                )


def test_replay_stream_matches_full_reprofile_under_variant_config():
    """The ablation guarantee: replaying recorded traces through a
    *different* cache geometry equals re-profiling from scratch under
    that geometry."""
    base = MachineConfig()
    variant = MachineConfig(llc=CacheConfig(8 * 1024, 16, latency_cycles=30))
    workload_cls = ALL_WORKLOADS[0]
    store = TraceStore()
    profile_workload(
        workload_cls(), 1, base, interp="replay", trace_store=store,
    )
    fresh = profile_workload(workload_cls(), 1, variant, interp="fast")
    for scheme, stream in fresh.profiles.items():
        rebuilt = replay_stream(store.schemes[scheme], scheme, variant)
        assert [phase_to_dict(t.execute) for t in rebuilt.tasks] == [
            phase_to_dict(t.execute) for t in stream.tasks
        ], scheme


def test_replay_stream_refuses_non_replayable_traces():
    from repro.runtime.profiler import ProfileError

    store = TraceStore()
    _profile_matrix(_alloca_kind, "replay", store)
    with pytest.raises(ProfileError):
        replay_stream(store.schemes["cae"], "cae", MachineConfig())


# -- engine integration --------------------------------------------------------


def test_pooled_engine_unchanged_by_replay():
    """``jobs=2`` through the process pool with the replay default
    returns the same payloads as a serial fast-interpreter run."""
    workloads = (ALL_WORKLOADS[0](),)
    serial = run_experiment(ExperimentSpec(
        workloads=workloads, jobs=1, cache=False, interp="fast",
    ))
    pooled = run_experiment(ExperimentSpec(
        workloads=workloads, jobs=2, cache=False, interp="replay",
    ))
    for name, run in serial.items():
        assert _payload_text(run) == _payload_text(pooled[name])


def test_phase_trace_snapshot_matches_execution_trace_shape():
    trace = PhaseTrace(
        data=None, instructions=10, slots=12,
        by_opcode={"fadd": 3, "load": 4}, mem_events=4,
        dropped_prefetches=1, stores=0, delta={},
    )
    snap = trace.snapshot()
    assert snap["instructions"] == 10
    assert snap["flops"] == 3
    assert snap["mem_events"] == 4
    assert snap["dropped_prefetches"] == 1
    assert trace.events == 0 and not trace.valid
