"""Interpreter and simulated memory tests."""

import pytest

from repro.frontend import compile_source
from repro.interp import (
    ExecutionTrace,
    InterpError,
    Interpreter,
    MemoryError_,
    SimMemory,
)
from repro.ir import F64, I64


class TestSimMemory:
    def test_alloc_alignment(self):
        memory = SimMemory()
        base = memory.alloc(100, align=64)
        assert base % 64 == 0
        second = memory.alloc(8)
        assert second >= base + 100

    def test_array_init_and_read(self):
        memory = SimMemory()
        base = memory.alloc_array(8, 3, "x", init=[1.5, 2.5, 3.5])
        assert memory.read_array(base, 8, 3, F64) == [1.5, 2.5, 3.5]

    def test_uninitialized_reads_zero(self):
        memory = SimMemory()
        base = memory.alloc_array(8, 2, "x")
        assert memory.load(base, I64) == 0
        assert memory.load(base + 8, F64) == 0.0

    def test_bounds_checked(self):
        memory = SimMemory()
        memory.alloc_array(8, 2, "x")
        with pytest.raises(MemoryError_):
            memory.load(0x10, I64)
        with pytest.raises(MemoryError_):
            memory.store(0x10, I64, 1)

    def test_region_lookup(self):
        memory = SimMemory()
        base = memory.alloc_array(8, 4, "arr")
        region = memory.region_of(base + 16)
        assert region is not None and region.name == "arr"
        assert memory.region_of(base - 1) is None or True  # other region ok


class TestTraceCollection:
    def test_instruction_and_opcode_counts(self):
        src = ("func f(n: i64) -> i64 { var s: i64 = 0; var i: i64;"
               " for (i = 0; i < n; i = i + 1) { s = s + i * 2; }"
               " return s; }")
        func = compile_source(src).function("f")
        trace = Interpreter(SimMemory()).run(func, [5])
        assert trace.return_value == 20
        assert trace.count("mul") == 5
        assert trace.instructions > 30

    def test_memory_events_streamed_in_order(self):
        from repro.transform import optimize_function

        src = ("task t(A: f64*) { A[0] = 1.0; A[1] = A[0]; }")
        func = compile_source(src).function("t")
        optimize_function(func)  # drop alloca spill traffic
        memory = SimMemory()
        base = memory.alloc_array(8, 2, "A")
        events = []
        Interpreter(memory, observer=lambda e: events.append(
            (e.kind, e.address))).run(func, [base])
        assert events == [
            ("store", base), ("load", base), ("store", base + 8),
        ]

    def test_flops_counted(self):
        src = "func f(x: f64) -> f64 { return x * x + x / 2.0; }"
        func = compile_source(src).function("f")
        trace = Interpreter(SimMemory()).run(func, [3.0])
        assert trace.flops == 3


class TestErrors:
    def test_step_limit_enforced(self):
        src = "task t(n: i64) { while (n > 0) { n = n + 1; } }"
        func = compile_source(src).function("t")
        interp = Interpreter(SimMemory(), max_steps=1000)
        with pytest.raises(InterpError):
            interp.run(func, [1])

    def test_arg_count_checked(self):
        func = compile_source("task t(n: i64) { }").function("t")
        with pytest.raises(InterpError):
            Interpreter(SimMemory()).run(func, [])

    def test_division_by_zero_raises(self):
        func = compile_source(
            "func f(a: i64) -> i64 { return 1 / a; }"
        ).function("f")
        with pytest.raises(InterpError):
            Interpreter(SimMemory()).run(func, [0])


class TestUndefHandling:
    def test_prefetch_of_undef_dropped(self):
        from repro.ir import (
            VOID, Function, IRBuilder, Prefetch, Undef, pointer_to,
        )
        func = Function("p", [], [], VOID)
        block = func.add_block("entry")
        b = IRBuilder(block)
        undef_ptr = Undef(pointer_to(F64))
        block.append(Prefetch(undef_ptr))
        b.ret()
        trace = Interpreter(SimMemory()).run(func, [])
        assert trace.dropped_prefetches == 1
