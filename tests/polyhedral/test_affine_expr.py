"""AffineExpr and Constraint algebra, with hypothesis properties."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.polyhedral import AffineExpr, Constraint

SYMS = ("i", "j", "N")


def exprs():
    coeff = st.integers(min_value=-6, max_value=6)
    return st.builds(
        lambda cs, const: AffineExpr(dict(zip(SYMS, cs)), const),
        st.tuples(coeff, coeff, coeff),
        st.integers(min_value=-20, max_value=20),
    )


def points():
    v = st.integers(min_value=-10, max_value=10)
    return st.builds(lambda a, b, c: dict(zip(SYMS, (a, b, c))), v, v, v)


class TestAlgebraProperties:
    @given(exprs(), exprs(), points())
    def test_addition_pointwise(self, a, b, p):
        assert (a + b).evaluate(p) == a.evaluate(p) + b.evaluate(p)

    @given(exprs(), exprs(), points())
    def test_subtraction_pointwise(self, a, b, p):
        assert (a - b).evaluate(p) == a.evaluate(p) - b.evaluate(p)

    @given(exprs(), st.integers(min_value=-5, max_value=5), points())
    def test_scaling_pointwise(self, a, k, p):
        assert (a * k).evaluate(p) == k * a.evaluate(p)

    @given(exprs())
    def test_negation_roundtrip(self, a):
        assert -(-a) == a

    @given(exprs())
    def test_zero_coefficients_dropped(self, a):
        assert all(c != 0 for c in a.coeffs.values())

    @given(exprs(), points())
    def test_content_normalization_preserves_sign(self, a, p):
        normalized = a.content_normalized()
        lhs = a.evaluate(p)
        rhs = normalized.evaluate(p)
        assert (lhs > 0) == (rhs > 0) and (lhs == 0) == (rhs == 0)


class TestExprBasics:
    def test_substitute(self):
        expr = AffineExpr.symbol("i") * 2 + AffineExpr.symbol("j")
        substituted = expr.substitute("i", AffineExpr.symbol("j") + 1)
        assert substituted == AffineExpr({"j": 3}, 2)

    def test_drop(self):
        expr = AffineExpr({"i": 1, "j": 2}, 3)
        assert expr.drop("i") == AffineExpr({"j": 2}, 3)

    def test_evaluate_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            AffineExpr.symbol("i").evaluate({})

    def test_scaled_to_integer(self):
        expr = AffineExpr({"i": Fraction(1, 2)}, Fraction(1, 3))
        scaled = expr.scaled_to_integer()
        assert scaled.is_integral()
        assert scaled.coeff("i") == 3 and scaled.const == 2

    def test_repr_readable(self):
        expr = AffineExpr({"i": 1, "j": -1}, 4)
        text = repr(expr)
        assert "i" in text and "j" in text and "4" in text


class TestConstraints:
    def test_ge_le_eq_constructors(self):
        i = AffineExpr.symbol("i")
        assert Constraint.ge(i, 3).satisfied_by({"i": 3})
        assert not Constraint.ge(i, 3).satisfied_by({"i": 2})
        assert Constraint.le(i, 3).satisfied_by({"i": 3})
        assert not Constraint.le(i, 3).satisfied_by({"i": 4})
        assert Constraint.eq(i, 3).satisfied_by({"i": 3})
        assert not Constraint.eq(i, 3).satisfied_by({"i": 4})

    def test_constraints_normalized_for_equality(self):
        i = AffineExpr.symbol("i")
        a = Constraint.ge(i * 2 - 4)
        b = Constraint.ge(i - 2)
        assert a == b
        assert hash(a) == hash(b)
