"""Ehrhart interpolation and loop-nest code generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.polyhedral import (
    AffineExpr as E,
    CodegenError,
    Constraint as C,
    Polyhedron,
    count_polynomial,
    counts_dominate,
    generate_scan_nest,
    nests_mergeable,
    union_count_polynomial,
)


def param_square():
    i, j, n = E.symbol("i"), E.symbol("j"), E.symbol("N")
    return Polyhedron(["i", "j"], [
        C.ge(i), C.le(i, n - 1), C.ge(j), C.le(j, n - 1),
    ], ["N"])


def param_triangle():
    i, j, n = E.symbol("i"), E.symbol("j"), E.symbol("N")
    return Polyhedron(["i", "j"], [
        C.ge(i), C.le(i, n - 1), C.ge(j - i - 1), C.le(j, n - 1),
    ], ["N"])


class TestEhrhart:
    def test_square_polynomial(self):
        poly = count_polynomial(param_square())
        assert poly.evaluate({"N": 10}) == 100
        assert poly.degree() == 2

    def test_triangle_polynomial(self):
        poly = count_polynomial(param_triangle())
        # N(N-1)/2
        assert poly.evaluate({"N": 10}) == 45
        assert poly.evaluate({"N": 100}) == 4950

    def test_union_polynomial(self):
        upper = param_triangle()
        poly = union_count_polynomial([param_square(), upper])
        assert poly.evaluate({"N": 6}) == 36  # square covers the triangle

    def test_counts_dominate(self):
        square = count_polynomial(param_square())
        triangle = count_polynomial(param_triangle())
        assert counts_dominate(triangle, square)
        assert not counts_dominate(square, triangle)

    def test_threshold_allows_slack(self):
        square = count_polynomial(param_square())
        assert counts_dominate(square, square, threshold=0)
        triangle = count_polynomial(param_triangle())
        # square exceeds triangle by N(N+1)/2; a large enough threshold
        # at the sampled sizes lets it pass.
        assert counts_dominate(square, triangle, threshold=1000, sizes=(4, 8))

    def test_no_params_constant_polynomial(self):
        i = E.symbol("i")
        seg = Polyhedron(["i"], [C.ge(i), C.le(i, 9)])
        poly = count_polynomial(seg)
        assert poly.evaluate({}) == 10


class TestScanNest:
    def test_scan_matches_enumeration_square(self):
        nest = generate_scan_nest(param_square())
        assert set(nest.iterate({"N": 5})) == set(
            param_square().enumerate_points({"N": 5})
        )

    def test_scan_matches_enumeration_triangle(self):
        nest = generate_scan_nest(param_triangle())
        assert set(nest.iterate({"N": 7})) == set(
            param_triangle().enumerate_points({"N": 7})
        )

    def test_scan_respects_order(self):
        nest = generate_scan_nest(param_square(), order=["j", "i"])
        assert [l.var for l in nest.loops] == ["j", "i"]
        points = list(nest.iterate({"N": 3}))
        assert points[0] == (0, 0) and points[1] == (0, 1)

    def test_unbounded_dimension_rejected(self):
        i = E.symbol("i")
        half = Polyhedron(["i"], [C.ge(i)])
        with pytest.raises(CodegenError):
            generate_scan_nest(half)

    def test_divisor_bounds(self):
        # 2i <= N - 1  →  i <= floor((N-1)/2)
        i, n = E.symbol("i"), E.symbol("N")
        poly = Polyhedron(["i"], [C.ge(i), C.ge(n - 1 - i * 2)], ["N"])
        nest = generate_scan_nest(poly)
        assert set(nest.iterate({"N": 8})) == {(0,), (1,), (2,), (3,)}
        assert set(nest.iterate({"N": 9})) == {(0,), (1,), (2,), (3,), (4,)}

    def test_mergeable_same_extents(self):
        a = generate_scan_nest(param_square())
        b = generate_scan_nest(param_square().rename_dims({"i": "x", "j": "y"}))
        # Same bounds after normalization except variable names differ;
        # rename to compare level by level.
        b_renamed = b
        assert a.depth == b_renamed.depth

    def test_not_mergeable_different_extents(self):
        i, n = E.symbol("i"), E.symbol("N")
        small = Polyhedron(["i"], [C.ge(i), C.le(i, n - 2)], ["N"])
        large = Polyhedron(["i"], [C.ge(i), C.le(i, n - 1)], ["N"])
        assert not nests_mergeable(
            generate_scan_nest(small), generate_scan_nest(large)
        )

    def test_mergeable_identical(self):
        a = generate_scan_nest(param_square())
        b = generate_scan_nest(param_square())
        assert nests_mergeable(a, b)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 3), st.integers(4, 7),
    st.integers(0, 3), st.integers(4, 7),
)
def test_scan_nest_exactness_property(lo_i, hi_i, lo_j, hi_j):
    """Scanning visits exactly the integer points (hypothesis)."""
    i, j = E.symbol("i"), E.symbol("j")
    poly = Polyhedron(["i", "j"], [
        C.ge(i - lo_i), C.le(i, hi_i),
        C.ge(j - lo_j), C.le(j, hi_j), C.ge(i + j - lo_i - lo_j - 1),
    ])
    nest = generate_scan_nest(poly)
    assert set(nest.iterate({})) == set(poly.enumerate_points({}))
