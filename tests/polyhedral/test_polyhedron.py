"""Polyhedron operations: FM projection, emptiness, enumeration, unions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.polyhedral import AffineExpr as E, Constraint as C, Polyhedron
from repro.polyhedral import union_count, union_enumerate


def box(lo_i, hi_i, lo_j, hi_j, params=()):
    i, j = E.symbol("i"), E.symbol("j")
    return Polyhedron(
        ["i", "j"],
        [C.ge(i - lo_i), C.le(i, hi_i), C.ge(j - lo_j), C.le(j, hi_j)],
        params,
    )


class TestEnumeration:
    def test_box_count(self):
        assert box(0, 3, 0, 2).count_points({}) == 12

    def test_triangle_count(self):
        i, j = E.symbol("i"), E.symbol("j")
        tri = Polyhedron(["i", "j"], [
            C.ge(i), C.le(i, 4), C.ge(j), C.le(j, i),
        ])
        assert tri.count_points({}) == 15  # 1+2+3+4+5

    def test_parametric_count(self):
        i = E.symbol("i")
        n = E.symbol("N")
        line = Polyhedron(["i"], [C.ge(i), C.le(i, n - 1)], ["N"])
        assert line.count_points({"N": 7}) == 7

    def test_equality_linked_dims(self):
        i, j = E.symbol("i"), E.symbol("j")
        diag = Polyhedron(["i", "j"], [
            C.ge(i), C.le(i, 5), C.eq(i - j),
        ])
        points = sorted(diag.enumerate_points({}))
        assert points == [(k, k) for k in range(6)]

    def test_empty_range_yields_nothing(self):
        assert box(3, 2, 0, 1).count_points({}) == 0

    def test_unbounded_raises(self):
        i = E.symbol("i")
        half = Polyhedron(["i"], [C.ge(i)])
        with pytest.raises(ValueError):
            list(half.enumerate_points({}))

    def test_enumeration_limit(self):
        with pytest.raises(ValueError):
            box(0, 1000, 0, 1000).count_points({}, limit=10)


class TestProjection:
    def test_eliminate_inner_dim(self):
        tri = Polyhedron(["i", "j"], [
            C.ge(E.symbol("i")), C.le(E.symbol("i"), 4),
            C.ge(E.symbol("j") - E.symbol("i")), C.le(E.symbol("j"), 6),
        ])
        proj = tri.eliminate("j")
        assert proj.dims == ["i"]
        assert proj.count_points({}) == 5

    def test_projection_is_shadow(self):
        poly = box(1, 4, 2, 5)
        proj = poly.project_onto(["i"])
        assert sorted(p[0] for p in proj.enumerate_points({})) == [1, 2, 3, 4]

    def test_equality_substitution_exact(self):
        i, j = E.symbol("i"), E.symbol("j")
        poly = Polyhedron(["i", "j"], [
            C.eq(j - i * 2), C.ge(i), C.le(i, 3),
        ])
        proj = poly.eliminate("i")
        values = sorted(p[0] for p in proj.enumerate_points({}))
        # j = 2i, rationally the projection is the interval [0, 6]
        assert values[0] == 0 and values[-1] == 6


class TestEmptiness:
    def test_contradiction_detected(self):
        i = E.symbol("i")
        poly = Polyhedron(["i"], [C.ge(i - 5), C.le(i, 3)])
        assert poly.is_empty()

    def test_feasible_not_empty(self):
        assert not box(0, 3, 0, 3).is_empty()

    def test_parametric_emptiness_is_rational(self):
        i = E.symbol("i")
        n = E.symbol("N")
        poly = Polyhedron(["i"], [C.ge(i - n), C.le(i, n)], ["N"])
        assert not poly.is_empty()  # i == N works for any N

    def test_infeasible_equalities(self):
        i = E.symbol("i")
        poly = Polyhedron(["i"], [C.eq(i - 1), C.eq(i - 2)])
        assert poly.is_empty()


class TestUnions:
    def test_union_count_disjoint(self):
        a, b = box(0, 1, 0, 1), box(5, 6, 5, 6)
        assert union_count([a, b], {}) == 8

    def test_union_count_overlapping(self):
        a, b = box(0, 2, 0, 2), box(1, 3, 1, 3)
        # 9 + 9 - 4 overlap
        assert union_count([a, b], {}) == 14

    def test_union_count_matches_enumeration(self):
        a, b, c = box(0, 2, 0, 2), box(2, 4, 1, 3), box(1, 3, 2, 5)
        assert union_count([a, b, c], {}) == len(union_enumerate([a, b, c], {}))

    def test_param_substitution(self):
        i = E.symbol("i")
        n = E.symbol("N")
        poly = Polyhedron(["i"], [C.ge(i), C.le(i, n)], ["N"])
        fixed = poly.with_param_values({"N": 4})
        assert fixed.params == []
        assert fixed.count_points({}) == 5


@settings(max_examples=40, deadline=None)
@given(
    st.integers(0, 4), st.integers(0, 4), st.integers(0, 4), st.integers(0, 4),
    st.integers(0, 4), st.integers(0, 4), st.integers(0, 4), st.integers(0, 4),
)
def test_union_count_inclusion_exclusion_property(
    a1, a2, b1, b2, c1, c2, d1, d2,
):
    """Inclusion-exclusion equals direct enumeration on random boxes."""
    p = box(min(a1, a2), max(a1, a2), min(b1, b2), max(b1, b2))
    q = box(min(c1, c2), max(c1, c2), min(d1, d2), max(d1, d2))
    assert union_count([p, q], {}) == len(union_enumerate([p, q], {}))
