"""Double description: generators, H↔V round trips, convex union."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.polyhedral import (
    AffineExpr as E,
    Constraint as C,
    Polyhedron,
    convex_union,
    from_generators,
    generators,
)


def box(lo_i, hi_i, lo_j, hi_j):
    i, j = E.symbol("i"), E.symbol("j")
    return Polyhedron(["i", "j"], [
        C.ge(i - lo_i), C.le(i, hi_i), C.ge(j - lo_j), C.le(j, hi_j),
    ])


class TestGenerators:
    def test_square_vertices(self):
        v, rays, lines = generators(box(0, 2, 0, 2))
        assert rays == [] and lines == []
        got = {tuple(map(int, p)) for p in v}
        assert got == {(0, 0), (0, 2), (2, 0), (2, 2)}

    def test_triangle_vertices(self):
        i, j = E.symbol("i"), E.symbol("j")
        tri = Polyhedron(["i", "j"], [C.ge(i), C.ge(j), C.le(i + j, 3)])
        v, rays, lines = generators(tri)
        got = {tuple(map(int, p)) for p in v}
        assert got == {(0, 0), (3, 0), (0, 3)}

    def test_halfline_has_ray(self):
        i = E.symbol("i")
        half = Polyhedron(["i"], [C.ge(i - 2)])
        v, rays, lines = generators(half)
        assert [tuple(map(int, p)) for p in v] == [(2,)]
        assert rays and int(rays[0][0]) > 0

    def test_full_line_detected(self):
        i, j = E.symbol("i"), E.symbol("j")
        strip = Polyhedron(["i", "j"], [C.ge(j), C.le(j, 1)])
        v, rays, lines = generators(strip)
        # i is unconstrained: either a line or two opposite rays.
        directions = [tuple(r) for r in rays] + [tuple(l) for l in lines]
        assert any(d[0] != 0 for d in directions)

    def test_parametric_polyhedron_has_param_rays(self):
        i = E.symbol("i")
        n = E.symbol("N")
        line = Polyhedron(["i"], [C.ge(i), C.le(i, n - 1)], ["N"])
        v, rays, lines = generators(line)
        assert rays  # growth direction along (i, N)


class TestRoundTrip:
    def check_roundtrip(self, poly, sample_params=None):
        sample_params = sample_params or {}
        v, rays, lines = generators(poly)
        back = from_generators(poly.dims, v, rays, lines, poly.params)
        want = set(poly.enumerate_points(sample_params))
        got = set(back.enumerate_points(sample_params))
        assert want == got

    def test_box_roundtrip(self):
        self.check_roundtrip(box(1, 4, 2, 5))

    def test_triangle_roundtrip(self):
        i, j = E.symbol("i"), E.symbol("j")
        tri = Polyhedron(["i", "j"], [C.ge(i), C.ge(j - i), C.le(j, 4)])
        self.check_roundtrip(tri)

    def test_roundtrip_removes_redundant_constraints(self):
        i = E.symbol("i")
        redundant = Polyhedron(["i"], [
            C.ge(i), C.le(i, 5), C.le(i, 9), C.le(i, 100),
        ])
        v, rays, lines = generators(redundant)
        back = from_generators(["i"], v, rays, lines)
        assert len(back.constraints) == 2

    def test_empty_generator_set_is_empty_polyhedron(self):
        empty = from_generators(["i"], [], [], [])
        assert empty.is_empty()


class TestConvexUnion:
    def test_hull_of_two_squares(self):
        hull = convex_union([box(0, 1, 0, 1), box(4, 5, 4, 5)])
        assert hull.count_points({}) == 16

    def test_hull_contains_both_inputs(self):
        a, b = box(0, 2, 0, 1), box(1, 3, 2, 4)
        hull = convex_union([a, b])
        for poly in (a, b):
            for point in poly.enumerate_points({}):
                assert hull.contains(dict(zip(hull.dims, point)))

    def test_hull_of_one_is_itself(self):
        a = box(0, 3, 1, 2)
        hull = convex_union([a])
        assert set(hull.enumerate_points({})) == set(a.enumerate_points({}))

    def test_parametric_hull(self):
        i, j, n = E.symbol("i"), E.symbol("j"), E.symbol("N")
        lower = Polyhedron(["i", "j"], [
            C.ge(i), C.le(i, n - 1), C.ge(j), C.le(j, i),
        ], ["N"])
        upper = Polyhedron(["i", "j"], [
            C.ge(i), C.le(i, n - 1), C.ge(j - i), C.le(j, n - 1),
        ], ["N"])
        hull = convex_union([lower, upper])
        # Together the triangles cover the square at any size.
        assert hull.count_points({"N": 5}) == 25


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4),
              st.integers(0, 4), st.integers(0, 4)),
    min_size=1, max_size=3,
))
def test_hull_superset_property(boxes):
    """The hull of random boxes contains every box point (hypothesis)."""
    polys = [
        box(min(a, b), max(a, b), min(c, d), max(c, d))
        for a, b, c, d in boxes
    ]
    hull = convex_union(polys)
    union_points = set()
    for poly in polys:
        union_points.update(poly.enumerate_points({}))
    hull_points = set(hull.enumerate_points({}))
    assert union_points <= hull_points
