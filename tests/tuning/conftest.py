"""Shared fixtures for the tuning suite.

Profiling all seven paper workloads is the expensive part (~20s for the
DAE stream), so it happens once per session, into a session-scoped
cache directory that the tuning tests reuse — which also exercises the
profile-cache sharing between the engine and the tuner.
"""

from __future__ import annotations

import pytest

from repro.engine import ExperimentSpec, run_experiment
from repro.runtime.task import Scheme


@pytest.fixture(autouse=True)
def fresh_tuned_registry():
    """Each tuning test starts (and leaves) with no tuning result
    installed, so the global policy registry never leaks across tests."""
    from repro.tuning.policy import _unregister_tuned_for_tests
    _unregister_tuned_for_tests()
    yield
    _unregister_tuned_for_tests()


@pytest.fixture(scope="session")
def tuning_cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("tuning-cache"))


@pytest.fixture(scope="session")
def dae_runs(tuning_cache_dir):
    """All seven paper workloads profiled once (DAE stream only)."""
    spec = ExperimentSpec(
        schemes=(Scheme.DAE,), cache_dir=tuning_cache_dir,
    )
    return run_experiment(spec)
