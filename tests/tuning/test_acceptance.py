"""The issue's acceptance criteria, verified on every bundled workload.

1. Grid search with the ``edp`` objective reproduces
   :func:`optimal_edp_point`'s choice bit-for-bit on every phase of
   every bundled workload.
2. Coordinate descent's schedule-level EDP is never worse than the
   phase-local optimum's schedule EDP, and strictly better on at least
   one workload.
"""

from repro.power.frequency import optimal_edp_point, phase_edp_at
from repro.tuning import EDPObjective, grid_search_point, tune_workload


class TestGridReproducesPhaseLocalOptimum:
    def test_every_phase_of_every_workload(self, dae_runs):
        objective = EDPObjective()
        config = dae_runs.spec.config
        phases_checked = 0
        for name in dae_runs:
            for task in dae_runs[name].profiles["dae"].tasks:
                profiles = [task.execute]
                if task.access is not None:
                    profiles.append(task.access)
                for profile in profiles:
                    outcome = grid_search_point(
                        lambda point: objective.phase_value(
                            profile, point, config
                        ),
                        config.operating_points,
                    )
                    expected = optimal_edp_point(profile, config)
                    assert outcome.best_point == expected, (
                        "grid/edp diverged from optimal_edp_point on a "
                        "%s phase: %r != %r"
                        % (name, outcome.best_point, expected)
                    )
                    assert outcome.best_value == phase_edp_at(
                        profile, expected, config
                    )
                    phases_checked += 1
        assert phases_checked > 100  # all workloads actually contributed


class TestDescentBeatsPhaseLocal:
    def test_schedule_level_edp_never_worse_strictly_better_somewhere(
            self, dae_runs, tuning_cache_dir):
        strictly_better = []
        for name in dae_runs:
            result = tune_workload(
                name, objective="edp", strategy="descent",
                cache_dir=tuning_cache_dir, install=False,
            )
            # Profiles came from the session cache, not a re-run.
            assert result.stats.engine["jobs_completed"] == 0
            assert result.best.value <= result.phase_local.value, (
                "tuned pair lost to the phase-local baseline on %s: "
                "%g > %g"
                % (name, result.best.value, result.phase_local.value)
            )
            if result.best.value < result.phase_local.value:
                strictly_better.append(name)
        assert strictly_better, (
            "schedule-level tuning should strictly beat the phase-local "
            "baseline on at least one workload"
        )
