"""Objective registry, constraint handling, and power-model agreement."""

import pytest

from repro.power.frequency import phase_edp_at
from repro.sim.config import MachineConfig
from repro.sim.timing import PhaseProfile
from repro.tuning import (
    DelayUnderPowerCap,
    EDPObjective,
    EnergyUnderDeadline,
    Objective,
    resolve_objective,
)


def _profile() -> PhaseProfile:
    profile = PhaseProfile(instructions=4000, slots=6000)
    profile.counts.loads["l1"] = 300
    profile.counts.loads["dram"] = 20
    return profile


class TestRegistry:
    def test_plain_names_resolve(self):
        for name in ("edp", "ed2p", "energy", "delay"):
            objective = Objective.from_name(name)
            assert objective.name == name
            assert objective.spec == name

    def test_names_are_case_insensitive(self):
        assert Objective.from_name("EDP").name == "edp"

    def test_parameterized_names_resolve(self):
        deadline = Objective.from_name("energy-under-deadline@0.5")
        assert isinstance(deadline, EnergyUnderDeadline)
        assert deadline.deadline_s == 0.5
        assert deadline.spec == "energy-under-deadline@0.5"
        cap = Objective.from_name("delay-under-power-cap@35")
        assert isinstance(cap, DelayUnderPowerCap)
        assert cap.cap_w == 35.0

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="edp"):
            Objective.from_name("nope")

    def test_parameterized_needs_numeric_bound(self):
        with pytest.raises(ValueError, match="numeric bound"):
            Objective.from_name("energy-under-deadline@soon")

    def test_parameterized_needs_positive_bound(self):
        with pytest.raises(ValueError, match="positive"):
            Objective.from_name("delay-under-power-cap@-3")

    def test_resolve_objective_coerces(self):
        assert resolve_objective("edp").name == "edp"
        instance = EDPObjective()
        assert resolve_objective(instance) is instance
        with pytest.raises(ValueError):
            resolve_objective(42)


class TestScores:
    def test_unconstrained_scores(self):
        time_s, energy_j = 2.0, 3.0
        assert resolve_objective("energy").evaluate(time_s, energy_j) == 3.0
        assert resolve_objective("delay").evaluate(time_s, energy_j) == 2.0
        assert resolve_objective("edp").evaluate(time_s, energy_j) == 6.0
        assert resolve_objective("ed2p").evaluate(time_s, energy_j) == 12.0

    def test_deadline_constraint_goes_infeasible(self):
        objective = EnergyUnderDeadline(1.0)
        assert objective.evaluate(0.5, 7.0) == 7.0
        assert objective.evaluate(1.5, 7.0) == float("inf")

    def test_power_cap_constraint_goes_infeasible(self):
        objective = DelayUnderPowerCap(10.0)  # watts
        assert objective.evaluate(2.0, 15.0) == 2.0    # 7.5 W, fits
        assert objective.evaluate(1.0, 15.0) == float("inf")  # 15 W

    def test_zero_time_never_trips_power_cap(self):
        assert DelayUnderPowerCap(10.0).evaluate(0.0, 5.0) == 0.0


class TestPhaseValue:
    def test_edp_phase_value_matches_phase_edp_at_bitwise(self):
        """The acceptance-critical identity: the `edp` objective's
        phase-local arithmetic is the paper's `phase_edp_at`, exactly."""
        config = MachineConfig()
        profile = _profile()
        objective = EDPObjective()
        for point in config.operating_points:
            assert objective.phase_value(profile, point, config) \
                == phase_edp_at(profile, point, config)

    def test_infeasible_phase_value_is_inf(self):
        config = MachineConfig()
        objective = EnergyUnderDeadline(1e-15)  # impossible deadline
        point = config.operating_points[0]
        assert objective.phase_value(_profile(), point, config) \
            == float("inf")
