"""Search-strategy unit tests: determinism, tie-breaks, eval counting."""

import pytest

from repro.sim.config import MachineConfig
from repro.tuning import (
    CandidatePair,
    coordinate_descent,
    golden_section,
    grid_search_pair,
    grid_search_point,
    interpolate_point,
    nearest_point,
    sorted_points,
)

POINTS = MachineConfig().operating_points


class TestGrid:
    def test_point_scan_finds_minimum(self):
        outcome = grid_search_point(
            lambda p: (p.freq_ghz - 2.4) ** 2, POINTS
        )
        assert outcome.best_point.freq_ghz == 2.4
        assert outcome.evaluations == len(POINTS)

    def test_point_ties_resolve_to_lower_frequency(self):
        outcome = grid_search_point(lambda p: 1.0, POINTS)
        assert outcome.best_point.freq_ghz == min(
            p.freq_ghz for p in POINTS
        )

    def test_point_scan_order_independent(self):
        reversed_points = tuple(reversed(sorted_points(POINTS)))
        a = grid_search_point(lambda p: 1.0, POINTS)
        b = grid_search_point(lambda p: 1.0, reversed_points)
        assert a.best_point == b.best_point

    def test_pair_scan_covers_all_pairs(self):
        seen = []
        outcome = grid_search_pair(
            lambda pair: seen.append(pair.key) or 0.0, POINTS
        )
        assert outcome.evaluations == len(POINTS) ** 2
        assert len(set(seen)) == len(POINTS) ** 2
        # Ties resolve lexicographically low.
        assert outcome.best_pair.key == (1.6, 1.6)

    def test_pair_scan_finds_joint_minimum(self):
        outcome = grid_search_pair(
            lambda pair: (pair.access.freq_ghz - 2.0) ** 2
            + (pair.execute.freq_ghz - 3.2) ** 2,
            POINTS,
        )
        assert outcome.best_pair.key == (2.0, 3.2)


class TestNearestAndInterpolate:
    def test_exact_frequency_snaps_to_itself(self):
        for point in POINTS:
            assert nearest_point(point.freq_ghz, POINTS) == point

    def test_midpoint_snaps_low(self):
        assert nearest_point(2.2, POINTS).freq_ghz == 2.0

    def test_interpolate_is_exact_at_discrete_points(self):
        config = MachineConfig()
        for point in POINTS:
            interpolated = interpolate_point(point.freq_ghz, config)
            assert interpolated.voltage == pytest.approx(
                point.voltage, abs=1e-12
            )

    def test_interpolate_between_points_is_linear(self):
        config = MachineConfig()
        ordered = sorted_points(POINTS)
        a, b = ordered[0], ordered[1]
        mid = (a.freq_ghz + b.freq_ghz) / 2.0
        interpolated = interpolate_point(mid, config)
        assert interpolated.voltage == pytest.approx(
            (a.voltage + b.voltage) / 2.0
        )

    def test_interpolate_rejects_out_of_range(self):
        config = MachineConfig()
        with pytest.raises(ValueError, match="V/f line"):
            interpolate_point(0.5, config)
        with pytest.raises(ValueError, match="V/f line"):
            interpolate_point(5.0, config)


class TestGoldenSection:
    def test_finds_interior_minimum(self):
        outcome = golden_section(lambda f: (f - 2.7) ** 2, 1.6, 3.4)
        assert outcome.best_freq_ghz == pytest.approx(2.7, abs=0.02)
        # Far fewer evaluations than a fine grid would need.
        assert outcome.evaluations < 25

    def test_probes_endpoints_for_monotone_objectives(self):
        increasing = golden_section(lambda f: f, 1.6, 3.4)
        assert increasing.best_freq_ghz == 1.6
        decreasing = golden_section(lambda f: -f, 1.6, 3.4)
        assert decreasing.best_freq_ghz == 3.4

    def test_best_value_was_actually_sampled(self):
        sampled = []
        outcome = golden_section(
            lambda f: sampled.append(f) or (f - 2.0) ** 2, 1.6, 3.4
        )
        assert outcome.best_freq_ghz in sampled

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            golden_section(lambda f: f, 3.0, 2.0)


class TestCoordinateDescent:
    def _seed(self, access_ghz=3.4, execute_ghz=3.4):
        by_freq = {p.freq_ghz: p for p in POINTS}
        return CandidatePair(by_freq[access_ghz], by_freq[execute_ghz])

    def test_separable_objective_reaches_global_minimum(self):
        outcome = coordinate_descent(
            lambda pair: (pair.access.freq_ghz - 1.6) ** 2
            + (pair.execute.freq_ghz - 2.8) ** 2,
            POINTS, self._seed(),
        )
        assert outcome.best_pair.key == (1.6, 2.8)

    def test_never_worse_than_seed(self):
        def evaluate(pair):
            return -pair.access.freq_ghz * pair.execute.freq_ghz

        seed = self._seed(1.6, 1.6)
        outcome = coordinate_descent(evaluate, POINTS, seed)
        assert outcome.best_value <= evaluate(seed)

    def test_distinct_candidates_evaluated_once(self):
        calls = []

        def evaluate(pair):
            calls.append(pair.key)
            return (pair.access.freq_ghz - 2.0) ** 2 \
                + (pair.execute.freq_ghz - 2.0) ** 2

        outcome = coordinate_descent(evaluate, POINTS, self._seed())
        assert len(calls) == len(set(calls))
        assert outcome.evaluations == len(calls)

    def test_prefetch_sees_each_scan_before_probes(self):
        prefetched = []
        probed = []

        def evaluate(pair):
            probed.append(pair.key)
            return pair.access.freq_ghz + pair.execute.freq_ghz

        coordinate_descent(
            evaluate, POINTS, self._seed(),
            prefetch=lambda scan: prefetched.append(
                [pair.key for pair in scan]
            ),
        )
        # Every probed pair (bar the seed) appeared in a prefetch batch,
        # and batches only ever contain not-yet-probed pairs.
        flat = [key for batch in prefetched for key in batch]
        assert set(probed) - {self._seed().key} <= set(flat)
        assert len(flat) == len(set(flat))
