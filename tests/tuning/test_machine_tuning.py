"""Tuning on a machine model: homogeneous pass-through and the
heterogeneous placement × per-type point search."""

import pytest

from repro.machines import little_config
from repro.sim import MachineConfig
from repro.tuning import tune_workload

from ..engine.tinywork import TinyWorkload

BIG_FREQS = sorted(p.freq_ghz for p in MachineConfig().operating_points)
LITTLE_FREQS = sorted(
    p.freq_ghz for p in little_config().operating_points)


@pytest.fixture(scope="module")
def biglittle_result():
    return tune_workload(
        TinyWorkload(), machine="biglittle", cache=False, install=False,
    )


class TestHomogeneousMachine:
    def test_sandybridge_matches_machine_less_tuning(self):
        plain = tune_workload(TinyWorkload(), cache=False, install=False)
        machined = tune_workload(
            TinyWorkload(), machine="sandybridge", cache=False,
            install=False,
        )
        assert machined.machine == "sandybridge"
        assert machined.placement is None
        assert machined.best.label == plain.best.label
        assert machined.best.value == plain.best.value

    def test_machine_and_config_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            tune_workload(
                TinyWorkload(), config=MachineConfig(),
                machine="sandybridge", install=False,
            )


class TestBigLittleTuning:
    def test_result_records_machine_and_placement(self, biglittle_result):
        result = biglittle_result
        assert result.machine == "biglittle"
        assert set(result.placement) == {"access", "execute"}
        assert result.placement["access"] in ("big", "little")
        assert result.placement["execute"] in ("big", "little")

    def test_placement_search_covers_every_pairing(self, biglittle_result):
        labels = [c.label for c in biglittle_result.candidates]
        prefixes = {label.split(" ", 1)[0] for label in labels}
        assert prefixes == {"little->big", "big->big", "little->little"}
        # Exhaustive per-placement sweeps over the placed tables.
        n_big, n_little = len(BIG_FREQS), len(LITTLE_FREQS)
        assert labels and len(labels) == (
            n_little * n_big + n_big * n_big + n_little * n_little
        )
        strategy_names = {s.name for s in biglittle_result.strategies}
        assert {
            "placement:little->big",
            "placement:big->big",
            "placement:little->little",
        } <= strategy_names

    def test_winner_is_the_global_best(self, biglittle_result):
        feasible = [
            c.value for c in biglittle_result.candidates
            if c.value != float("inf")
        ]
        assert biglittle_result.best.value == min(feasible)

    def test_as_dict_carries_machine_fields(self, biglittle_result):
        doc = biglittle_result.as_dict()
        assert doc["machine"] == "biglittle"
        assert doc["placement"] == biglittle_result.placement
        entry = biglittle_result.manifest_entry()
        assert entry["tuning"]["machine"] == "biglittle"
        assert entry["tuning"]["placement"] == biglittle_result.placement

    def test_unknown_machine_name_raises(self):
        with pytest.raises(KeyError, match="registered"):
            tune_workload(
                TinyWorkload(), machine="cray1", install=False,
            )
