"""Pareto-front extraction: dominance, filtering, determinism."""

from repro.power.frequency import FrequencyPolicy
from repro.runtime.scheduler import DAEScheduler
from repro.runtime.task import Scheme
from repro.sim.config import MachineConfig
from repro.tuning import (
    ParetoPoint,
    dominates,
    front_from_schedules,
    pareto_front,
)


class TestDominates:
    def test_strictly_better_on_both_axes(self):
        assert dominates(ParetoPoint(1.0, 1.0), ParetoPoint(2.0, 2.0))

    def test_better_on_one_equal_on_other(self):
        assert dominates(ParetoPoint(1.0, 2.0), ParetoPoint(2.0, 2.0))
        assert dominates(ParetoPoint(2.0, 1.0), ParetoPoint(2.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(ParetoPoint(1.0, 1.0), ParetoPoint(1.0, 1.0))

    def test_trade_off_points_do_not_dominate(self):
        a = ParetoPoint(1.0, 3.0)
        b = ParetoPoint(3.0, 1.0)
        assert not dominates(a, b)
        assert not dominates(b, a)


class TestFront:
    def test_dominated_points_are_filtered(self):
        points = [
            ParetoPoint(1.0, 3.0, "fast"),
            ParetoPoint(2.0, 2.0, "mid"),
            ParetoPoint(3.0, 1.0, "frugal"),
            ParetoPoint(2.5, 2.5, "dominated"),
            ParetoPoint(4.0, 4.0, "awful"),
        ]
        front = pareto_front(points)
        assert [p.label for p in front] == ["fast", "mid", "frugal"]

    def test_front_is_sorted_by_time(self):
        front = pareto_front([
            ParetoPoint(3.0, 1.0, "c"),
            ParetoPoint(1.0, 3.0, "a"),
            ParetoPoint(2.0, 2.0, "b"),
        ])
        assert [p.time_s for p in front] == [1.0, 2.0, 3.0]

    def test_no_member_dominates_another(self):
        points = [
            ParetoPoint(float(t), float(10 - t + (t % 3)), str(t))
            for t in range(10)
        ]
        front = pareto_front(points)
        for a in front:
            for b in front:
                assert not dominates(a, b)

    def test_duplicate_points_keep_first_label(self):
        front = pareto_front([
            ParetoPoint(1.0, 1.0, "zed"),
            ParetoPoint(1.0, 1.0, "alpha"),
        ])
        assert [p.label for p in front] == ["alpha"]

    def test_input_order_does_not_matter(self):
        points = [
            ParetoPoint(1.0, 3.0, "a"),
            ParetoPoint(2.0, 2.0, "b"),
            ParetoPoint(2.0, 2.5, "x"),
        ]
        assert pareto_front(points) == pareto_front(reversed(points))

    def test_empty_input(self):
        assert pareto_front([]) == []


class TestFrontFromSchedules:
    def test_accepts_mapping_of_results(self, dae_runs):
        config = MachineConfig()
        tasks = dae_runs["cg"].profiles["dae"].tasks
        scheduler = DAEScheduler(config)
        schedules = {
            name: scheduler.run(
                tasks, Scheme.DAE, FrequencyPolicy.from_name(name, config)
            )
            for name in ("fmax", "fmin", "optimal")
        }
        front = front_from_schedules(schedules)
        assert front
        labels = {p.label for p in front}
        assert labels <= set(schedules)
        # fmax is the fastest policy, so it is never dominated.
        assert "fmax" in labels
