"""End-to-end ``tune_workload`` behaviour: determinism, caching, pool
fan-out, policy installation, observability."""

import json

import pytest

from repro import obs
from repro.power.frequency import FrequencyPolicy
from repro.sim.config import MachineConfig
from repro.tuning import (
    STRATEGIES,
    TunedPolicy,
    install_tuned_policy,
    tune_workload,
)
from ..engine.tinywork import TinyWorkload


def _tune(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return tune_workload(TinyWorkload(), **kwargs)


class TestTuneWorkload:
    def test_all_strategies_run_and_agree_on_a_best(self, tmp_path):
        result = _tune(tmp_path)
        assert result.strategy == "all"
        assert [s.name for s in result.strategies] \
            == ["phase-local"] + list(STRATEGIES)[1:]
        assert result.best.pair is not None
        assert result.best.feasible
        # The exhaustive scan saw every pair, so nothing beats the best.
        assert all(result.best.value <= c.value
                   for c in result.candidates)

    def test_exhaustive_covers_the_full_grid(self, tmp_path):
        result = _tune(tmp_path, strategy="exhaustive")
        points = len(MachineConfig().operating_points)
        assert len(result.candidates) == points ** 2

    def test_unknown_strategy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown strategy"):
            _tune(tmp_path, strategy="simulated-annealing")

    def test_front_is_consistent_with_candidates(self, tmp_path):
        result = _tune(tmp_path)
        labels = {c.label for c in result.candidates} | {"phase-local"}
        assert result.front
        assert {p.label for p in result.front} <= labels

    def test_references_include_named_policies(self, tmp_path):
        result = _tune(tmp_path)
        assert set(result.references) \
            == {"policy:minmax", "policy:fmin", "policy:fmax"}


class TestDeterminismAndCache:
    def test_jobs_result_is_byte_identical_to_serial(self, tmp_path):
        serial = tune_workload(
            TinyWorkload(), cache_dir=str(tmp_path / "c1"), jobs=1,
        )
        pooled = tune_workload(
            TinyWorkload(), cache_dir=str(tmp_path / "c2"), jobs=4,
        )
        assert json.dumps(serial.as_dict(), sort_keys=True) \
            == json.dumps(pooled.as_dict(), sort_keys=True)
        assert pooled.stats.pool_evals > 0

    def test_warm_rerun_recomputes_nothing(self, tmp_path):
        cold = _tune(tmp_path)
        assert cold.stats.schedule_evals == cold.stats.requests
        warm = _tune(tmp_path)
        # No re-profile: the engine served the profiles from cache...
        assert warm.stats.engine["jobs_completed"] == 0
        assert warm.stats.engine["cache_hits"] == 1
        # ...and no re-schedule: every candidate hit the tuning cache.
        assert warm.stats.schedule_evals == 0
        assert warm.stats.cache_hits == warm.stats.requests
        assert json.dumps(cold.as_dict(), sort_keys=True) \
            == json.dumps(warm.as_dict(), sort_keys=True)

    def test_no_cache_mode_still_works(self, tmp_path):
        result = _tune(tmp_path, cache=False)
        assert result.stats.cache_hits == 0
        assert result.stats.schedule_evals == result.stats.requests


class TestPolicyInstallation:
    def test_tuned_resolves_after_tuning(self, tmp_path):
        with pytest.raises(ValueError, match="no tuning result"):
            FrequencyPolicy.from_name("tuned")
        result = _tune(tmp_path)
        assert result.installed
        policy = FrequencyPolicy.from_name("tuned")
        assert isinstance(policy, TunedPolicy)
        assert policy.pair.key == result.best.pair.key

    def test_install_false_leaves_registry_untouched(self, tmp_path):
        result = _tune(tmp_path, install=False)
        assert not result.installed
        with pytest.raises(ValueError, match="no tuning result"):
            FrequencyPolicy.from_name("tuned")

    def test_infeasible_objective_is_not_installed(self, tmp_path):
        result = _tune(
            tmp_path, objective="energy-under-deadline@1e-15",
        )
        assert not result.best.feasible
        assert not result.installed
        with pytest.raises(ValueError, match="no tuning result"):
            FrequencyPolicy.from_name("tuned")

    def test_reinstall_overwrites(self, tmp_path):
        _tune(tmp_path)
        config = MachineConfig()
        replacement = TunedPolicy(config.fmax, config.fmax)
        install_tuned_policy(replacement)
        assert FrequencyPolicy.from_name("tuned") is replacement


class TestObservability:
    def test_tuning_events_are_emitted(self, tmp_path):
        collector = obs.Collector(enabled=True)
        with obs.collecting(collector):
            result = _tune(tmp_path)
        spans = collector.select(name="tuning.run")
        assert len(spans) == 1
        assert spans[0].args["workload"] == "tiny"
        searches = collector.select(name="tuning.search")
        assert [s.args["strategy"] for s in searches] \
            == [s.name for s in result.strategies]
        counters = {e.name for e in collector.select(cat="tuning.stats")}
        assert "tuning.evaluations" in counters
        candidates = collector.select(name="tuning.candidate")
        assert len(candidates) == result.stats.schedule_evals

    def test_warm_rerun_emits_cache_hits_only(self, tmp_path):
        _tune(tmp_path)
        collector = obs.Collector(enabled=True)
        with obs.collecting(collector):
            result = _tune(tmp_path)
        hits = collector.select(name="tuning.cache.hit")
        assert len(hits) == result.stats.requests
        assert not collector.select(name="tuning.cache.miss")
        assert not collector.select(name="tuning.candidate")
