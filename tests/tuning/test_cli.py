"""The ``python -m repro.evaluation tune`` verb and its artifacts."""

import json

import pytest

from repro.evaluation.__main__ import main
from repro.evaluation.tuning import render_tuning_report
from repro.tuning import tune_workload


class TestTuneVerb:
    def test_writes_report_and_json(self, tmp_path, tuning_cache_dir,
                                    dae_runs, capsys):
        prefix = str(tmp_path / "cg")
        code = main([
            "tune", "cg", "--cache-dir", tuning_cache_dir,
            "--out", prefix,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# Tuning report: cg" in out
        report = (tmp_path / "cg-tuning.md").read_text()
        assert "## Pareto front" in report
        doc = json.loads((tmp_path / "cg-tuning.json").read_text())
        assert doc["workload"] == "cg"
        assert doc["best"]["feasible"] is True
        assert {s["name"] for s in doc["strategies"]} \
            == {"phase-local", "exhaustive", "golden", "descent"}

    def test_jobs_run_is_byte_identical_to_serial(
            self, tmp_path, tuning_cache_dir, dae_runs, capsys):
        main(["tune", "cg", "--cache-dir", tuning_cache_dir,
              "--out", str(tmp_path / "serial")])
        serial_out = capsys.readouterr().out
        main(["tune", "cg", "--cache-dir", tuning_cache_dir, "--jobs", "2",
              "--out", str(tmp_path / "pooled")])
        pooled_out = capsys.readouterr().out
        assert serial_out == pooled_out
        assert (tmp_path / "serial-tuning.md").read_bytes() \
            == (tmp_path / "pooled-tuning.md").read_bytes()
        assert (tmp_path / "serial-tuning.json").read_bytes() \
            == (tmp_path / "pooled-tuning.json").read_bytes()

    def test_missing_app_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune"])
        assert "workload name" in capsys.readouterr().err

    def test_unknown_app_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune", "nope"])
        assert "unknown workload" in capsys.readouterr().err


class TestReportRendering:
    def test_report_is_deterministic_for_a_result(self, tmp_path,
                                                  tuning_cache_dir,
                                                  dae_runs):
        result = tune_workload(
            "cg", cache_dir=tuning_cache_dir, install=False,
        )
        assert render_tuning_report(result) == render_tuning_report(result)

    def test_report_marks_infeasible_runs(self, tmp_path,
                                          tuning_cache_dir, dae_runs):
        result = tune_workload(
            "cg", objective="energy-under-deadline@1e-15",
            cache_dir=tuning_cache_dir, install=False,
        )
        report = render_tuning_report(result)
        assert "infeasible" in report
        assert "tuned policy installed: no" in report
