"""Memory-access classification: affine vs non-affine, task affinity."""

from repro.analysis import AccessAnalysis
from repro.frontend import compile_source
from repro.transform import optimize_function
from tests.conftest import LU_KERNEL, POINTER_CHASE, compile_optimized


def analysis_for(source, name):
    module = compile_source(source)
    func = module.function(name)
    optimize_function(func)
    return AccessAnalysis(func)


class TestAffineTasks:
    def test_lu_fully_affine(self):
        analysis = analysis_for(LU_KERNEL, "lu_kernel")
        assert analysis.is_affine_task()
        assert all(a.is_affine for a in analysis.real_accesses())
        assert len(analysis.affine_target_loops()) == 1
        assert len(analysis.target_loops()) == 1

    def test_accesses_have_base_and_index(self):
        analysis = analysis_for(LU_KERNEL, "lu_kernel")
        for access in analysis.real_accesses():
            assert access.base is not None
            assert access.base.name == "A"
            assert access.index is not None

    def test_loads_and_stores_partitioned(self):
        analysis = analysis_for(LU_KERNEL, "lu_kernel")
        assert len(analysis.loads()) == 5
        assert len(analysis.stores()) == 2

    def test_block_offsets_stay_affine(self):
        src = ("task t(A: f64*, N: i64, B: i64, off: i64) {"
               " var i: i64; var j: i64;"
               " for (i = 0; i < B; i = i + 1) {"
               "  for (j = 0; j < B; j = j + 1) {"
               "   A[(off+i)*N + off+j] = 0.0; } } }")
        analysis = analysis_for(src, "t")
        assert analysis.is_affine_task()


class TestNonAffineTasks:
    def test_pointer_chase_not_affine(self):
        analysis = analysis_for(POINTER_CHASE, "chase")
        assert not analysis.is_affine_task()

    def test_indirection_makes_access_non_affine(self):
        src = ("task t(A: i64*, B: f64*, n: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + 1) { B[A[i]] = 1.0; } }")
        analysis = analysis_for(src, "t")
        gather = [a for a in analysis.real_accesses() if a.base is not None
                  and a.base.name == "B"]
        assert gather and not gather[0].is_affine
        assert not analysis.is_affine_task()

    def test_data_dependent_branch_rejected(self):
        src = ("task t(A: f64*, n: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + 1) {"
               "  if (A[i] > 0.0) { A[i] = 0.0; } } }")
        analysis = analysis_for(src, "t")
        assert not analysis.is_affine_task()
        (lc,) = [c for c in analysis.loop_classes if c.loop.parent is None]
        assert any("control flow" in r for r in lc.reasons)

    def test_loaded_bound_rejected(self):
        src = ("task t(P: i64*, A: f64*) { var i: i64; var hi: i64;"
               " hi = P[0];"
               " for (i = 0; i < hi; i = i + 1) { A[i] = 0.0; } }")
        analysis = analysis_for(src, "t")
        assert not analysis.is_affine_task()

    def test_mixed_loops_counted_separately(self):
        src = ("task t(A: f64*, B: i64*, n: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + 1) { A[i] = 1.0; }"
               " for (i = 0; i < n; i = i + 1) { A[B[i]] = 2.0; } }")
        analysis = analysis_for(src, "t")
        assert len(analysis.target_loops()) == 2
        assert len(analysis.affine_target_loops()) == 1
        assert not analysis.is_affine_task()


class TestTracePointer:
    def test_chained_geps_accumulate(self):
        src = ("task t(A: f64*, n: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + 1) {"
               "  var p: f64* = A + n; p[i] = 0.0; } }")
        analysis = analysis_for(src, "t")
        (store,) = analysis.stores()
        assert store.base is not None and store.base.name == "A"
        assert store.is_affine
        # index should mention both the IV and the n offset
        assert len(store.index.induction_phis()) == 1
        assert store.index.parameters()

    def test_alloca_traffic_flagged_local(self):
        # Before mem2reg, locals go through allocas.
        module = compile_source(
            "task t(A: f64*) { var x: f64 = 1.0; A[0] = x; }"
        )
        analysis = AccessAnalysis(module.function("t"))
        locals_ = [a for a in analysis.accesses if a.is_local_scalar]
        assert locals_  # alloca loads/stores detected
        assert all(a not in analysis.real_accesses() for a in locals_)
