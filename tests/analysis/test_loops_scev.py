"""Natural loops, induction variables, and scalar evolution."""

from repro.analysis import LinearExpr, LoopInfo, ScalarEvolution
from repro.frontend import compile_source
from repro.transform import optimize_function
from tests.conftest import LU_KERNEL, compile_optimized


def analyzed(source, name):
    module = compile_source(source)
    func = module.function(name)
    optimize_function(func)
    info = LoopInfo(func)
    return func, info, ScalarEvolution(info)


class TestLoopDiscovery:
    def test_lu_has_three_nested_loops(self, lu_module):
        func = lu_module.function("lu_kernel")
        info = LoopInfo(func)
        assert len(info.loops) == 3
        depths = sorted(l.depth for l in info.loops)
        assert depths == [1, 2, 3]

    def test_nesting_parents(self, lu_module):
        func = lu_module.function("lu_kernel")
        info = LoopInfo(func)
        inner = max(info.loops, key=lambda l: l.depth)
        assert inner.parent is not None
        assert inner.parent.parent is not None
        assert inner.parent.parent.parent is None

    def test_top_level_loops(self, lu_module):
        func = lu_module.function("lu_kernel")
        info = LoopInfo(func)
        assert len(info.top_level()) == 1

    def test_sequential_loops_are_siblings(self):
        src = ("task t(A: f64*, n: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + 1) { A[i] = 1.0; }"
               " for (i = 0; i < n; i = i + 1) { A[i] = 2.0; } }")
        func, info, _ = analyzed(src, "t")
        assert len(info.loops) == 2
        assert all(l.parent is None for l in info.loops)

    def test_exit_blocks(self):
        src = ("task t(A: f64*, n: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + 1) { A[i] = 1.0; } }")
        func, info, _ = analyzed(src, "t")
        (loop,) = info.loops
        assert len(loop.exiting_blocks()) == 1
        assert len(loop.exit_blocks()) == 1

    def test_no_loops_in_straightline_code(self):
        src = "task t(A: f64*) { A[0] = 1.0; }"
        func, info, _ = analyzed(src, "t")
        assert info.loops == []


class TestInductionVariables:
    def test_canonical_iv_found(self):
        src = ("task t(A: f64*, n: i64) { var i: i64;"
               " for (i = 2; i < n; i = i + 1) { A[i] = 1.0; } }")
        func, info, scev = analyzed(src, "t")
        iv = info.loops[0].induction_variable()
        assert iv is not None
        bounds = scev.iv_bounds(iv.phi)
        assert bounds is not None
        init, bound, predicate = bounds
        assert init.constant_value == 2
        assert predicate == "slt"

    def test_while_countdown_recognized(self):
        src = ("task t(A: f64*, n: i64) { var i: i64 = n;"
               " while (i > 0) { i = i - 1; A[i] = 0.0; } }")
        func, info, _ = analyzed(src, "t")
        iv = info.loops[0].induction_variable()
        assert iv is not None
        assert int(iv.step.value) == -1

    def test_non_constant_step_rejected_by_scev(self):
        src = ("task t(A: f64*, n: i64, s: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + s) { A[i] = 1.0; } }")
        func, info, scev = analyzed(src, "t")
        iv_phis = [l.induction_variable() for l in info.loops]
        # loop structure exists but scev cannot linearize the phi
        for iv in iv_phis:
            if iv is not None:
                assert scev.linear(iv.phi) is None


class TestLinearExpr:
    def test_add_and_subtract(self):
        a = LinearExpr.constant(3)
        b = LinearExpr.constant(4)
        assert (a + b).constant_value == 7
        assert (a - b).constant_value == -1

    def test_multiply_constant_folding(self):
        a = LinearExpr.constant(3)
        b = LinearExpr.constant(5)
        assert a.multiply(b).constant_value == 15

    def test_equality_and_hash(self):
        assert LinearExpr.constant(0) == LinearExpr({})
        assert hash(LinearExpr.constant(2)) == hash(LinearExpr.constant(2))


class TestScalarEvolution:
    def test_affine_index_recovered(self):
        func = compile_optimized(LU_KERNEL).function("lu_kernel")
        info = LoopInfo(func)
        scev = ScalarEvolution(info)
        from repro.ir import GEP
        geps = [i for i in func.instructions() if isinstance(i, GEP)]
        assert geps
        for gep in geps:
            expr = scev.linear(gep.index)
            assert expr is not None
            # every index is affine over at most 2 IVs with N strides
            assert len(expr.induction_phis()) <= 2

    def test_loads_are_not_linear(self):
        src = ("task t(A: i64*, B: f64*, n: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + 1) { B[A[i]] = 1.0; } }")
        func, info, scev = analyzed(src, "t")
        from repro.ir import GEP
        geps = [i for i in func.instructions() if isinstance(i, GEP)]
        kinds = {scev.linear(g.index) is None for g in geps}
        assert True in kinds  # the gather index is non-linear

    def test_iv_times_iv_is_nonlinear(self):
        src = ("task t(A: f64*, n: i64) { var i: i64; var j: i64;"
               " for (i = 0; i < n; i = i + 1) {"
               "  for (j = 0; j < n; j = j + 1) { A[i*j] = 1.0; } } }")
        func, info, scev = analyzed(src, "t")
        from repro.ir import GEP
        (gep,) = [i for i in func.instructions() if isinstance(i, GEP)]
        assert scev.linear(gep.index) is None

    def test_parameter_products_allowed_as_strides(self):
        src = ("task t(A: f64*, n: i64, m: i64) { var i: i64;"
               " for (i = 0; i < n; i = i + 1) { A[i*n*m] = 1.0; } }")
        func, info, scev = analyzed(src, "t")
        from repro.ir import GEP
        (gep,) = [i for i in func.instructions() if isinstance(i, GEP)]
        expr = scev.linear(gep.index)
        assert expr is not None
        ((iv, mono),) = [k for k in expr.terms]
        assert iv is not None and len(mono) == 2

    def test_cycle_in_phis_handled(self):
        src = ("task t(A: f64*, n: i64) { var a: i64 = 0; var b: i64 = 1;"
               " var i: i64; for (i = 0; i < n; i = i + 1) {"
               "  var tmp: i64 = a; a = b; b = tmp; A[a] = 1.0; } }")
        func, info, scev = analyzed(src, "t")
        from repro.ir import GEP
        (gep,) = [i for i in func.instructions() if isinstance(i, GEP)]
        assert scev.linear(gep.index) is None  # swap-phi is not an IV
