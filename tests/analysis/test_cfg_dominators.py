"""CFG utilities, dominator tree and post-dominators."""

from repro.analysis import (
    DominatorTree,
    predecessors_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from repro.analysis.dominators import post_dominator_map
from repro.frontend import compile_source
from repro.transform import optimize_function

DIAMOND = """
task t(A: f64*, n: i64) {
  var i: i64;
  for (i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) {
      A[i] = 1.0;
    } else {
      A[i] = 2.0;
    }
  }
}
"""


def diamond_func():
    module = compile_source(DIAMOND)
    func = module.function("t")
    optimize_function(func)
    return func


def block(func, name):
    return func.block_named(name)


class TestOrders:
    def test_reverse_postorder_starts_at_entry(self):
        func = diamond_func()
        order = reverse_postorder(func)
        assert order[0] is func.entry
        assert len(order) == len(func.blocks)

    def test_rpo_defs_before_uses(self):
        func = diamond_func()
        order = reverse_postorder(func)
        positions = {b.name: i for i, b in enumerate(order)}
        assert positions["for.cond"] < positions["for.body"]
        assert positions["for.body"] < positions["if.then"]

    def test_predecessors_map_consistent(self):
        func = diamond_func()
        preds = predecessors_map(func)
        for b in func.blocks:
            for succ in b.successors():
                assert b in preds[succ]


class TestReachability:
    def test_all_blocks_reachable_after_lowering(self):
        func = diamond_func()
        assert reachable_blocks(func) == set(func.blocks)

    def test_remove_unreachable_blocks(self):
        func = diamond_func()
        orphan = func.add_block("orphan")
        from repro.ir import IRBuilder
        IRBuilder(orphan).ret()
        removed = remove_unreachable_blocks(func)
        assert removed == 1
        assert orphan not in func.blocks


class TestDominators:
    def test_entry_dominates_everything(self):
        func = diamond_func()
        dom = DominatorTree(func)
        for b in func.blocks:
            assert dom.dominates(func.entry, b)

    def test_branch_arms_do_not_dominate_merge(self):
        func = diamond_func()
        dom = DominatorTree(func)
        assert not dom.dominates(block(func, "if.then"), block(func, "if.end"))
        assert dom.dominates(block(func, "for.body"), block(func, "if.end"))

    def test_strict_dominance_irreflexive(self):
        func = diamond_func()
        dom = DominatorTree(func)
        assert not dom.strictly_dominates(func.entry, func.entry)
        assert dom.strictly_dominates(func.entry, block(func, "for.body"))

    def test_dominance_frontier_of_arms_is_merge(self):
        func = diamond_func()
        dom = DominatorTree(func)
        frontiers = dom.dominance_frontiers()
        assert block(func, "if.end") in frontiers[block(func, "if.then")]
        assert block(func, "if.end") in frontiers[block(func, "if.else")]

    def test_loop_body_frontier_contains_header(self):
        func = diamond_func()
        dom = DominatorTree(func)
        frontiers = dom.dominance_frontiers()
        assert block(func, "for.cond") in frontiers[block(func, "for.body")]


class TestPostDominators:
    def test_merge_postdominates_arms(self):
        func = diamond_func()
        pdom = post_dominator_map(func)
        assert pdom[block(func, "if.then")] is block(func, "if.end")
        assert pdom[block(func, "if.else")] is block(func, "if.end")

    def test_branch_block_postdominated_by_merge(self):
        func = diamond_func()
        pdom = post_dominator_map(func)
        assert pdom[block(func, "for.body")] is block(func, "if.end")

    def test_exit_block_has_no_postdominator(self):
        func = diamond_func()
        pdom = post_dominator_map(func)
        assert pdom[block(func, "for.end")] is None
