"""The evaluation CLI and the top-level public API."""

import pytest

import repro
from repro.evaluation.__main__ import main


class TestCLI:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "lu_block" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "classes detected" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])

    def test_trace_requires_app(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_trace_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["trace", "bogus"])

    def test_app_argument_rejected_for_other_experiments(self):
        with pytest.raises(SystemExit):
            main(["figure1", "cholesky"])

    def test_event_log_flags(self, capsys, tmp_path):
        import json

        trace_path = str(tmp_path / "f1.trace.json")
        events_path = str(tmp_path / "f1.events.jsonl")
        assert main(["figure1", "--trace", trace_path,
                     "--events", events_path]) == 0
        doc = json.load(open(trace_path))
        assert isinstance(doc["traceEvents"], list)
        for line in open(events_path):
            assert json.loads(line)["name"]

    def test_shared_flags_accepted_by_every_experiment(self):
        # the shared parent parser must make these parse (not run) everywhere
        from repro.evaluation.__main__ import _build_parser

        parser = _build_parser()
        for experiment in ("table1", "figure1", "figure2", "figure3",
                           "figure4", "headline", "all"):
            args = parser.parse_args(
                [experiment, "--scale", "2", "--jobs", "3", "--no-cache",
                 "--cache-dir", "/tmp/x"]
            )
            assert (args.scale, args.jobs, args.no_cache) == (2, 3, True)

    def test_cache_stats_and_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:       0" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_cache_requires_verb(self):
        with pytest.raises(SystemExit):
            main(["cache"])
        with pytest.raises(SystemExit):
            main(["cache", "defrag"])


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_quickstart_docstring_flow(self):
        module = repro.compile_source(
            "task t(A: f64*, n: i64) { var i: i64;"
            " for (i = 0; i < n; i = i + 1) { A[i] = A[i] + 1.0; } }"
        )
        repro.optimize_module(module)
        result = repro.generate_access_phase(
            module.function("t"), module=module
        )
        assert result.method == "affine"
        assert "t_access" in module.functions

    def test_module_level_generation(self):
        module = repro.compile_source(
            "task a(A: f64*) { A[0] = 1.0; }"
            "task b(B: f64*) { B[1] = B[1] * 2.0; }"
        )
        repro.optimize_module(module)
        results = repro.generate_module_access_phases(module)
        assert set(results) == {"a", "b"}

    def test_machine_configs(self):
        scaled = repro.MachineConfig()
        full = repro.sandybridge_full()
        assert full.l1.size_bytes > scaled.l1.size_bytes
        assert full.operating_points == scaled.operating_points


class TestStableApiFacade:
    """``repro.api`` is the stability contract: every documented name
    importable, and identical to its deep-module definition."""

    def test_every_declared_name_resolves(self):
        from repro import api

        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_facade_values_are_the_deep_imports(self):
        from repro import api
        from repro.engine.jobs import submit_experiment
        from repro.engine.pool import EnginePool, run_experiment
        from repro.engine.products import profile_workload
        from repro.engine.spec import ExperimentSpec
        from repro.obs.ledger import compare_runs
        from repro.service.client import ServiceClient
        from repro.tuning import tune_workload

        assert api.run_experiment is run_experiment
        assert api.submit_experiment is submit_experiment
        assert api.ExperimentSpec is ExperimentSpec
        assert api.EnginePool is EnginePool
        assert api.profile is profile_workload
        assert api.tune is tune_workload
        assert api.compare_runs is compare_runs
        assert api.ServiceClient is ServiceClient

    def test_facade_covers_the_documented_tasks(self):
        from repro import api

        # describe / run / serve / audit — one spot-check per group.
        for name in ("ExperimentSpec", "run_experiment",
                     "ServiceClient", "compare_runs",
                     "EngineError", "JobCancelled"):
            assert name in api.__all__, name

    def test_facade_runs_an_experiment(self):
        from repro import api

        from ..engine.tinywork import TinyWorkload

        spec = api.ExperimentSpec(workloads=(TinyWorkload(),), cache=False)
        result = api.run_experiment(spec)
        assert result["tiny"].task_count == TinyWorkload.chunks
