"""The ``machines`` verb: one recording per workload, every machine
replayed from it, manifest projection for the run-ledger gate."""

import json

import pytest

from repro.engine.products import ALL_SCHEMES, profile_workload
from repro.evaluation.experiments import MANIFEST_CONFIGS
from repro.evaluation.machines import (
    compare_machines,
    machines_manifest,
    render_machines_report,
)
from repro.obs.ledger import RunManifest, compare_runs
from repro.power.frequency import FrequencyPolicy
from repro.runtime import DAEScheduler
from repro.sim import MachineConfig

from ..engine.tinywork import TinyWorkload

MACHINES = ["sandybridge", "biglittle", "ideal"]
LABELS = [label for label, _, _, _ in MANIFEST_CONFIGS]


@pytest.fixture(scope="module")
def report():
    return compare_machines([TinyWorkload()], MACHINES)


class TestReportShape:
    def test_top_level(self, report):
        assert report["kind"] == "machines"
        assert report["scale"] == 1
        assert report["machines"] == MACHINES
        assert list(report["workloads"]) == ["tiny"]

    def test_recorded_once_and_replayed(self, report):
        doc = report["workloads"]["tiny"]
        assert doc["replayed"] is True
        assert doc["recorded_phases"] > 0
        assert doc["recorded_events"] > 0
        for name in MACHINES:
            column = doc["machines"][name]
            assert column["source"] == "replay"
            assert list(column["schedules"]) == LABELS

    def test_biglittle_column_carries_migrations(self, report):
        schedules = report["workloads"]["tiny"]["machines"]["biglittle"][
            "schedules"]
        dae = schedules["Compiler DAE (Optimal f.)"]["summary"]
        assert dae["machine"] == "biglittle"
        assert dae["placement"] == {"access": "little", "execute": "big"}
        assert dae["migrations"] > 0
        # Coupled runs pin to the big cluster: no machine annotations.
        cae = schedules["CAE (Max f.)"]["summary"]
        assert "machine" not in cae

    def test_relative_metrics_are_vs_own_cae(self, report):
        for name in MACHINES:
            schedules = report["workloads"]["tiny"]["machines"][name][
                "schedules"]
            relative = schedules["CAE (Max f.)"]["relative"]
            assert relative == {"time": 1.0, "energy": 1.0, "edp": 1.0}

    def test_sandybridge_column_matches_direct_schedule(self, report):
        config = MachineConfig()
        run = profile_workload(
            TinyWorkload(), 1, config, schemes=ALL_SCHEMES, interp="replay",
        )
        for label, stream, run_scheme, policy_name in MANIFEST_CONFIGS:
            policy = FrequencyPolicy.from_name(policy_name, config)
            direct = DAEScheduler(config).run(
                run.profiles[stream.value].tasks, run_scheme, policy,
            )
            column = report["workloads"]["tiny"]["machines"]["sandybridge"]
            assert column["schedules"][label]["summary"] == direct.summary()


class TestManifestProjection:
    def test_round_trips_and_self_compares_clean(self, report):
        doc = machines_manifest(report, "sandybridge")
        manifest = RunManifest.from_dict(doc)
        assert manifest.run_id == "machines-sandybridge"
        assert manifest.kind == "machines"
        assert list(manifest.workloads["tiny"]["schedules"]) == LABELS
        comparison = compare_runs(manifest, RunManifest.from_dict(doc))
        assert comparison.ok
        assert comparison.identical

    def test_manifest_spec_names_the_projection(self, report):
        doc = machines_manifest(report, "sandybridge")
        assert doc["workloads"]["tiny"]["from_cache"] is False
        assert doc["spec"]["machine"] == "sandybridge"
        assert doc["spec"]["machines"] == MACHINES


class TestRendering:
    def test_report_mentions_provenance_and_machines(self, report):
        text = render_machines_report(report)
        assert "zero re-interpretation" in text
        for name in MACHINES:
            assert name in text
        assert "little->big" in text


class TestCLI:
    def test_machines_verb_writes_report_and_manifest(self, tmp_path,
                                                      capsys):
        from repro.evaluation.__main__ import main

        out = tmp_path / "report.json"
        manifest_out = tmp_path / "manifest.json"
        rc = main([
            "machines", "cg", "--machines", "sandybridge",
            "--out", str(out), "--manifest-out", str(manifest_out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["machines"] == ["sandybridge"]
        manifest = RunManifest.from_dict(
            json.loads(manifest_out.read_text()))
        assert manifest.run_id == "machines-sandybridge"
        assert "cg" in manifest.workloads
        assert "Machine comparison" in capsys.readouterr().out

    def test_unknown_machine_is_a_usage_error(self):
        from repro.evaluation.__main__ import main

        with pytest.raises(SystemExit):
            main(["machines", "cg", "--machines", "cray1"])

    def test_manifest_machine_must_be_compared(self, tmp_path):
        from repro.evaluation.__main__ import main

        with pytest.raises(SystemExit):
            main([
                "machines", "cg", "--machines", "ideal",
                "--manifest-out", str(tmp_path / "m.json"),
            ])
