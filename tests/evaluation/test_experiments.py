"""Evaluation harness tests on the cheapest workloads.

The full seven-workload runs live in benchmarks/; here we validate the
harness mechanics and the headline *shape* on a two-workload subset
(cg = intermediate, cigar = memory-bound).
"""

import pytest

from repro.evaluation import (
    FIGURE3_CONFIGS,
    figure1_demo,
    figure2_demo,
    figure3_rows,
    figure4_series,
    headline_numbers,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_headline,
    render_table1,
    run_workload,
    table1_rows,
)
from repro.sim import MachineConfig
from repro.workloads import CGWorkload, CigarWorkload


@pytest.fixture(scope="module")
def runs():
    config = MachineConfig()
    return {
        "cg": run_workload(CGWorkload(), 1, config),
        "cigar": run_workload(CigarWorkload(), 1, config),
    }


class TestTable1:
    def test_rows_have_paper_and_measured(self, runs):
        rows = table1_rows(runs)
        assert len(rows) == 2
        cg = next(r for r in rows if r.name == "cg")
        assert cg.affine_loops == 0 and cg.total_loops == 2
        assert cg.paper_tasks == 35_634_375
        assert cg.tasks > 0
        assert 0 < cg.ta_percent < 100
        assert cg.ta_usec > 0

    def test_memory_bound_apps_have_high_ta(self, runs):
        rows = {r.name: r for r in table1_rows(runs)}
        assert rows["cigar"].ta_percent > 30  # paper: 49.27

    def test_render(self, runs):
        text = render_table1(table1_rows(runs))
        assert "cigar" in text and "Table 1" in text


class TestFigure3:
    def test_all_configs_present(self, runs):
        rows = figure3_rows(runs)
        labels = {label for label, *_ in FIGURE3_CONFIGS}
        for row in rows:
            assert set(row.time) == labels
            assert set(row.energy) == labels
            assert set(row.edp) == labels

    def test_geomean_row_appended(self, runs):
        rows = figure3_rows(runs)
        assert rows[-1].name == "G.Mean"

    def test_memory_bound_edp_improves(self, runs):
        rows = {r.name: r for r in figure3_rows(runs)}
        auto = rows["cigar"].edp["Compiler DAE (Optimal f.)"]
        assert auto < 0.8  # paper: up to 50% improvement

    def test_cae_optimal_trades_time_for_energy(self, runs):
        rows = {r.name: r for r in figure3_rows(runs)}
        for name in ("cg", "cigar"):
            cae = rows[name]
            assert cae.time["CAE (Optimal f.)"] >= 0.99
            assert cae.energy["CAE (Optimal f.)"] <= 1.0

    def test_dae_time_close_to_baseline(self, runs):
        rows = {r.name: r for r in figure3_rows(runs)}
        for name in ("cg", "cigar"):
            dae_time = rows[name].time["Compiler DAE (Optimal f.)"]
            cae_time = rows[name].time["CAE (Optimal f.)"]
            assert dae_time < cae_time  # DAE preserves performance better

    def test_render(self, runs):
        text = render_figure3(figure3_rows(runs))
        assert "(c) EDP" in text and "G.Mean" in text


class TestFigure4:
    def test_three_series_six_points(self, runs):
        series = figure4_series(runs["cg"])
        assert [s.label for s in series] == ["CAE", "Manual DAE", "Auto DAE"]
        for entry in series:
            assert len(entry.points) == 6

    def test_cae_time_decreases_with_frequency(self, runs):
        series = {s.label: s for s in figure4_series(runs["cg"])}
        totals = [p.total_ns for p in series["CAE"].points]
        assert totals[0] > totals[-1]

    def test_dae_splits_into_prefetch_and_task(self, runs):
        series = {s.label: s for s in figure4_series(runs["cg"])}
        for point in series["Auto DAE"].points:
            assert point.prefetch_ns > 0
            assert point.task_ns > 0
        assert all(p.prefetch_ns == 0 for p in series["CAE"].points)

    def test_render(self, runs):
        text = render_figure4("cg", figure4_series(runs["cg"]))
        assert "prefetch" in text and "O.S.I." in text


class TestHeadline:
    def test_zero_latency_at_least_as_good(self, runs):
        numbers = headline_numbers(runs)
        assert numbers.auto_edp_gain_0ns >= numbers.auto_edp_gain_500ns - 1e-9

    def test_gains_positive_for_memory_bound_subset(self, runs):
        numbers = headline_numbers(runs)
        assert numbers.auto_edp_gain_500ns > 0.10

    def test_render(self, runs):
        text = render_headline(headline_numbers(runs))
        assert "EDP improvement" in text


class TestAnalysisDemos:
    def test_figure1_range_analysis_blows_up_on_blocks(self):
        demos = figure1_demo()
        full = next(d for d in demos if d.kernel == "lu_full")
        block = next(d for d in demos if d.kernel == "lu_block")
        # Whole-matrix kernel: all three analyses coincide.
        assert full.exact_cells == full.hull_cells == full.range_cells
        # Block kernel: range analysis covers full rows (Figure 1(b)).
        assert block.hull_cells == block.exact_cells
        assert block.range_cells > 2 * block.exact_cells

    def test_figure2_class_separation_avoids_dead_space(self):
        result = figure2_demo()
        assert result["classes"] == 2
        assert result["per_class_hull_cells"] == result["exact_cells"]
        assert result["single_hull_cells"] > 2 * result["exact_cells"]

    def test_renders(self):
        assert "Figure 1" in render_figure1(figure1_demo())
        assert "Figure 2" in render_figure2(figure2_demo())
