"""Trace-backed machine-config ablation sweeps (`repro.evaluation ablate`)."""

import json

import pytest

from repro.evaluation import (
    ABLATE_CONFIGS,
    SWEEP_PARAMS,
    ablate_workload,
    render_ablation_report,
)
from repro.sim import MachineConfig

from ..engine.tinywork import TinyWorkload


@pytest.fixture(scope="module")
def report():
    return ablate_workload(TinyWorkload(), "mem_ns", [40.0, 65.0, 120.0])


class TestAblateWorkload:
    def test_report_shape(self, report):
        assert report["workload"] == "tiny"
        assert report["param"] == "mem_ns"
        assert report["values"] == [40.0, 65.0, 120.0]
        assert len(report["rows"]) == 3
        labels = [label for label, _, _ in ABLATE_CONFIGS]
        for row in report["rows"]:
            assert sorted(row["configs"]) == sorted(labels)
            for entry in row["configs"].values():
                assert entry["summary"]["time_s"] > 0
                assert entry["relative"]["edp"] > 0

    def test_variants_resimulated_by_replay(self, report):
        assert report["replayed"] is True
        assert report["recorded_phases"] > 0
        assert report["recorded_events"] > 0

    def test_report_is_json_able(self, report):
        json.dumps(report)

    def test_slower_dram_never_speeds_up_cae(self, report):
        times = [
            row["configs"]["CAE (Max f.)"]["summary"]["time_s"]
            for row in report["rows"]
        ]
        assert times == sorted(times)

    def test_base_value_matches_direct_run(self, report):
        # The 65 ns row replays under a config equal to the default —
        # its schedule must match an ablation run that starts there.
        direct = ablate_workload(
            TinyWorkload(), "mem_ns", [65.0], config=MachineConfig()
        )
        base_row = next(r for r in report["rows"] if r["value"] == 65.0)
        assert base_row["configs"] == direct["rows"][0]["configs"]

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            ablate_workload(TinyWorkload(), "branch_predictor", [1])

    def test_cache_capacity_builder_scales_bytes(self):
        _, build = SWEEP_PARAMS["llc_kb"]
        variant = build(MachineConfig(), 8)
        assert variant.llc.size_bytes == 8 * 1024
        assert variant.llc.sets == 8       # derived geometry recomputed
        assert variant.l1 == MachineConfig().l1


class TestRenderAblationReport:
    def test_mentions_replay_and_all_values(self, report):
        text = render_ablation_report(report)
        assert "trace replay" in text
        assert "| mem_ns |" in text
        for value in (40, 65, 120):
            assert "| %g |" % value in text

    def test_fallback_wording(self, report):
        fallback = dict(report, replayed=False)
        text = render_ablation_report(fallback)
        assert "full re-interpretation" in text
