"""Run manifests, the ledger CLI, and the regression gate end to end."""

import json

import pytest

from repro.engine import ExperimentSpec, run_experiment
from repro.evaluation import MANIFEST_CONFIGS, build_run_manifest, record_run
from repro.evaluation.__main__ import main
from repro.obs.ledger import RunLedger, compare_runs
from repro.obs.metrics import MetricsRegistry, set_registry

from ..engine.tinywork import TinyWorkload


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate the process-global metrics registry per test."""
    old = set_registry(MetricsRegistry())
    yield
    set_registry(old)


@pytest.fixture(scope="module")
def tiny_result():
    return run_experiment(
        ExperimentSpec(workloads=(TinyWorkload(),), cache=False)
    )


class TestBuildManifest:
    def test_shape(self, tiny_result):
        manifest = build_run_manifest(tiny_result)
        assert manifest.kind == "engine"
        assert list(manifest.workloads) == ["tiny"]
        entry = manifest.workloads["tiny"]
        assert entry["task_count"] == 2
        assert entry["from_cache"] is False
        labels = [row[0] for row in MANIFEST_CONFIGS]
        assert list(entry["schedules"]) == labels
        assert manifest.spec["key"]
        assert manifest.stats["jobs_completed"] == 1

    def test_baseline_relative_metrics_are_unity(self, tiny_result):
        manifest = build_run_manifest(tiny_result)
        baseline_label = MANIFEST_CONFIGS[0][0]
        schedules = manifest.workloads["tiny"]["schedules"]
        assert schedules[baseline_label]["relative_metrics"] == {
            "time": 1.0, "energy": 1.0, "edp": 1.0,
        }
        for entry in schedules.values():
            for value in entry["relative_metrics"].values():
                assert value > 0.0

    def test_energy_tree_matches_summary(self, tiny_result):
        manifest = build_run_manifest(tiny_result)
        for entry in manifest.workloads["tiny"]["schedules"].values():
            tree = entry["energy"]
            summary = entry["summary"]
            assert tree["energy_nj"] * 1e-9 == pytest.approx(
                summary["energy_j"], rel=1e-9,
            )
            assert tree["tasks"]
        # The manifest is valid JSON end to end.
        json.dumps(manifest.to_dict())

    def test_engine_telemetry_rides_along(self):
        # A fresh run under the fresh per-test registry: the serial job
        # must have observed into engine.pool.job_ms and the cache
        # gauge (cache disabled -> no probes, so only job_ms here).
        result = run_experiment(
            ExperimentSpec(workloads=(TinyWorkload(),), cache=False)
        )
        manifest = build_run_manifest(result)
        job_ms = manifest.metrics["engine.pool.job_ms"]
        assert job_ms["kind"] == "histogram"
        assert job_ms["count"] == 1
        assert job_ms["sum"] > 0.0

    def test_cache_hit_rate_gauge(self, tmp_path):
        spec = ExperimentSpec(
            workloads=(TinyWorkload(),), cache=True,
            cache_dir=str(tmp_path),
        )
        run_experiment(spec)   # cold: miss
        result = run_experiment(spec)  # warm: hit
        manifest = build_run_manifest(result)
        gauge = manifest.metrics["engine.cache.hit_rate"]
        assert gauge == {"kind": "gauge", "value": 1.0}


class TestRecordAndCompare:
    def test_same_spec_compares_clean(self, tiny_result, tmp_path):
        ledger = RunLedger(tmp_path)
        first, _ = record_run(tiny_result, ledger=ledger)
        second, _ = record_run(tiny_result, ledger=ledger)
        assert first.run_id != second.run_id
        comparison = compare_runs(
            ledger.load(first.run_id), ledger.load(second.run_id)
        )
        assert comparison.identical
        assert comparison.ok

    def test_record_accepts_a_path(self, tiny_result, tmp_path):
        manifest, path = record_run(tiny_result, ledger=str(tmp_path))
        assert path.parent == tmp_path
        assert RunLedger(tmp_path).load("latest").run_id == manifest.run_id


def _inflate(manifest_path, out_path, factor=1.10):
    doc = json.loads(manifest_path.read_text())
    for workload in doc["workloads"].values():
        for entry in workload["schedules"].values():
            entry["summary"]["energy_j"] *= factor
            entry["summary"]["edp_js"] *= factor
    out_path.write_text(json.dumps(doc))
    return out_path


class TestRunsCLI:
    @pytest.fixture()
    def ledger_with_run(self, tiny_result, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        manifest, path = record_run(tiny_result, ledger=ledger)
        return ledger, manifest, path

    def test_list(self, ledger_with_run, capsys):
        ledger, manifest, _ = ledger_with_run
        assert main(["runs", "list", "--ledger-dir", str(ledger.root)]) == 0
        out = capsys.readouterr().out
        assert manifest.run_id in out
        assert "tiny" in out

    def test_list_empty(self, tmp_path, capsys):
        assert main(["runs", "list", "--ledger-dir", str(tmp_path)]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_show(self, ledger_with_run, capsys):
        ledger, manifest, _ = ledger_with_run
        assert main([
            "runs", "show", "latest", "--ledger-dir", str(ledger.root),
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["run_id"] == manifest.run_id

    def test_show_unknown_ref_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["runs", "show", "nope", "--ledger-dir", str(tmp_path)])

    def test_compare_identical_exits_zero(self, tiny_result,
                                          ledger_with_run, capsys):
        ledger, manifest, _ = ledger_with_run
        record_run(tiny_result, ledger=ledger)
        code = main([
            "runs", "compare", manifest.run_id, "latest",
            "--ledger-dir", str(ledger.root),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "identical" in out

    def test_compare_inflated_energy_exits_nonzero(self, ledger_with_run,
                                                   tmp_path, capsys):
        ledger, manifest, path = ledger_with_run
        inflated = _inflate(path, tmp_path / "inflated.json")
        code = main([
            "runs", "compare", manifest.run_id, str(inflated),
            "--ledger-dir", str(ledger.root),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "**REGRESSION**" in out
        assert "**FAIL**" in out
        assert "+10.00%" in out

    def test_compare_threshold_flag(self, ledger_with_run, tmp_path):
        ledger, manifest, path = ledger_with_run
        inflated = _inflate(path, tmp_path / "inflated.json")
        assert main([
            "runs", "compare", manifest.run_id, str(inflated),
            "--ledger-dir", str(ledger.root), "--threshold", "15",
        ]) == 0

    def test_compare_metric_subset(self, ledger_with_run, tmp_path):
        ledger, manifest, path = ledger_with_run
        inflated = _inflate(path, tmp_path / "inflated.json")
        assert main([
            "runs", "compare", manifest.run_id, str(inflated),
            "--ledger-dir", str(ledger.root), "--metrics", "time",
        ]) == 0
        with pytest.raises(SystemExit):
            main([
                "runs", "compare", manifest.run_id, str(inflated),
                "--ledger-dir", str(ledger.root), "--metrics", "bogus",
            ])

    def test_record_rejects_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "runs", "record", "bogus",
                "--ledger-dir", str(tmp_path), "--no-cache",
            ])

    def test_record_cli_round_trip(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "runs")
        out_path = str(tmp_path / "manifest.json")
        assert main([
            "runs", "record", "cigar", "--no-cache",
            "--ledger-dir", ledger_dir, "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded " in out
        doc = json.loads(open(out_path).read())
        assert list(doc["workloads"]) == ["cigar"]
        manifest = RunLedger(ledger_dir).load("latest")
        assert list(manifest.workloads) == ["cigar"]


class TestTuningManifestEntry:
    def test_manifest_entry_shape(self, tmp_path):
        from repro.tuning import tune_workload
        from repro.tuning.policy import _unregister_tuned_for_tests

        result = tune_workload(
            TinyWorkload(), strategy="descent", cache=False, install=False,
        )
        _unregister_tuned_for_tests()
        entry = result.manifest_entry()
        schedules = entry["schedules"]
        assert {"tuned", "phase-local"} <= set(schedules)
        assert "policy:minmax" in schedules
        for doc in schedules.values():
            summary = doc["summary"]
            assert summary["time_s"] > 0.0
            assert summary["energy_j"] > 0.0
            assert summary["edp_js"] == pytest.approx(
                summary["time_s"] * summary["energy_j"]
            )
        assert entry["tuning"]["strategy"] == "descent"
        # A manifest built around this entry diffes like an engine one.
        from repro.obs.ledger import RunManifest

        manifest = RunManifest(kind="tune", workloads={"tiny": entry})
        ledger = RunLedger(tmp_path)
        ledger.record(manifest)
        comparison = compare_runs(manifest, ledger.load("latest"))
        assert comparison.ok
