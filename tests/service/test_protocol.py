"""The wire protocol: spec documents, dedup keys, canonical results."""

import json

import pytest

from repro.engine.products import EngineError
from repro.engine.spec import ExperimentSpec
from repro.service.protocol import (
    canonical_dumps,
    decode_line,
    encode_line,
    engine_result_doc,
    error_doc,
    job_key,
    spec_from_doc,
    spec_to_doc,
    tune_from_doc,
)

from ..engine.tinywork import TinyWorkload


class TestSpecDocuments:
    def test_round_trip(self):
        spec = ExperimentSpec(workloads=("cg", "lu"), scale=2, jobs=3)
        doc = spec_to_doc(spec)
        again = spec_from_doc(doc)
        assert [w.name for w in again.resolve_workloads()] == ["cg", "lu"]
        assert again.scale == 2
        assert again.jobs == 3
        assert again.schemes == spec.schemes

    def test_doc_is_json_serializable(self):
        doc = spec_to_doc(ExperimentSpec(workloads=("cg",)))
        json.dumps(doc)

    def test_unknown_field_rejected_loudly(self):
        with pytest.raises(EngineError) as err:
            spec_from_doc({"workloads": ["cg"], "scael": 2})
        assert "scael" in str(err.value)
        assert "workloads" in str(err.value)  # lists the valid fields

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            spec_from_doc(["cg"])

    def test_tune_doc_validates(self):
        kwargs = tune_from_doc({"workload": "cg", "objective": "edp"})
        assert kwargs == {"workload": "cg", "objective": "edp"}
        with pytest.raises(ValueError):
            tune_from_doc({"objective": "edp"})        # no workload
        with pytest.raises(ValueError):
            tune_from_doc({"workload": "cg", "bogus": 1})


class TestJobKey:
    def test_identical_docs_share_a_key(self):
        doc = {"workloads": ["cg"], "scale": 2}
        assert job_key("experiment", doc) == job_key("experiment", dict(doc))

    def test_execution_knobs_do_not_change_the_key(self):
        base = job_key("experiment", {"workloads": ["cg"], "scale": 2})
        for knob in ({"jobs": 4}, {"cache": False},
                     {"timeout_s": 5.0}, {"cache_dir": "/tmp/elsewhere"}):
            doc = {"workloads": ["cg"], "scale": 2, **knob}
            assert job_key("experiment", doc) == base, knob

    def test_result_determining_knobs_change_the_key(self):
        base = job_key("experiment", {"workloads": ["cg"], "scale": 2})
        assert job_key(
            "experiment", {"workloads": ["cg"], "scale": 3}) != base
        assert job_key(
            "experiment", {"workloads": ["lu"], "scale": 2}) != base
        assert job_key(
            "experiment",
            {"workloads": ["cg"], "scale": 2, "schemes": ["dae"]},
        ) != base

    def test_tune_and_experiment_keys_never_collide(self):
        assert job_key("experiment", {"workloads": ["cg"]}) != \
            job_key("tune", {"workload": "cg"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            job_key("banana", {})


class TestResultDocuments:
    def test_engine_result_doc_is_canonical_and_repeatable(self):
        from repro.engine import run_experiment

        spec = ExperimentSpec(workloads=(TinyWorkload(),), cache=False)
        first = canonical_dumps(engine_result_doc(run_experiment(spec)))
        second = canonical_dumps(engine_result_doc(run_experiment(spec)))
        assert first == second            # byte-identical across runs
        doc = json.loads(first)
        assert doc["kind"] == "experiment"
        assert set(doc["workloads"]) == {"tiny"}

    def test_canonical_dumps_is_order_insensitive(self):
        assert canonical_dumps({"b": 1, "a": 2}) == \
            canonical_dumps({"a": 2, "b": 1})
        with pytest.raises(ValueError):
            canonical_dumps({"x": float("nan")})


class TestFraming:
    def test_encode_decode_round_trip(self):
        line = encode_line({"op": "ping"})
        assert line.endswith(b"\n")
        assert decode_line(line) == {"op": "ping"}

    def test_garbage_lines_decode_to_none(self):
        assert decode_line(b"") is None
        assert decode_line(b"   \n") is None
        assert decode_line(b"{not json}\n") is None
        assert decode_line(b"[1, 2]\n") is None  # not an object

    def test_error_doc_shape(self):
        doc = error_doc("overloaded", "queue full", queue_depth=64)
        assert doc == {"ok": False, "error": "overloaded",
                       "detail": "queue full", "queue_depth": 64}
