"""The real daemon, end to end: subprocess, real engine, real workload.

This is the CI smoke path: start ``python -m repro.evaluation serve``
as a subprocess, drive it with :class:`ServiceClient`, and assert the
service's result bytes are identical to a direct in-process
:func:`run_experiment` of the same spec — the service is a *transport*,
never a different answer.  Also exercises graceful shutdown: a result
wait issued before ``shutdown`` is answered by the drain.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.engine import ExperimentSpec
from repro.engine.pool import run_experiment
from repro.service.client import ServiceClient
from repro.service.protocol import canonical_dumps, engine_result_doc

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

SPEC_DOC = {"workloads": ["cg"], "scale": 1}


@pytest.fixture
def daemon(tmp_path):
    socket_path = str(tmp_path / "daemon.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.evaluation", "serve",
         "--socket", socket_path,
         "--workers", "1",
         "--cache-dir", str(tmp_path / "service-cache"),
         "--no-ledger"],
        env={**os.environ, "PYTHONPATH": REPO_SRC},
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    client = ServiceClient(socket_path)
    try:
        if not client.wait_until_ready(timeout_s=30.0):
            proc.kill()
            out, err = proc.communicate(timeout=10.0)
            raise RuntimeError(
                "daemon failed to come up: %s" % err.decode()[-500:]
            )
        yield proc, client, socket_path
    finally:
        client.close()
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)


class TestDaemonSmoke:
    def test_service_result_is_byte_identical_to_direct_run(
            self, daemon, tmp_path):
        proc, client, _ = daemon

        # The ground truth: the same spec, run directly in this
        # process against a *separate* cache (independent compute,
        # not a cache echo).
        direct = run_experiment(ExperimentSpec(
            workloads=("cg",), scale=1,
            cache_dir=str(tmp_path / "direct-cache"),
        ))
        expected_text = canonical_dumps(engine_result_doc(direct))

        ack = client.submit(SPEC_DOC)
        assert ack["state"] in ("queued", "running")
        doc = client.result(ack["id"], timeout_s=120.0)

        expected_line = (
            '{"id":"%s","ok":true,"result":%s,"state":"done"}'
            % (ack["id"], expected_text)
        ).encode("utf-8")
        assert client.last_raw == expected_line
        assert doc == json.loads(expected_text)
        assert doc["workloads"]["cg"]["task_count"] > 0

    def test_graceful_shutdown_answers_pending_waiters(self, daemon):
        proc, client, socket_path = daemon

        ack = client.submit({"workloads": ["cg"], "scale": 2})
        results = {}
        waiter = ServiceClient(socket_path)

        def fetch():
            results["doc"] = waiter.result(ack["id"], timeout_s=120.0)

        fetcher = threading.Thread(target=fetch)
        fetcher.start()
        try:
            # Drain: the in-flight job finishes and the pending
            # result wait above is answered before the daemon exits.
            response = client.shutdown(drain=True)
            assert response["ok"]
            fetcher.join(timeout=120.0)
            assert not fetcher.is_alive()
            assert results["doc"]["kind"] == "experiment"
            assert "cg" in results["doc"]["workloads"]
        finally:
            waiter.close()
        assert proc.wait(timeout=30.0) == 0
