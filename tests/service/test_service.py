"""The evaluation service end to end, in process, with injected runners.

Each test runs a real :class:`EvaluationService` (real unix socket,
real asyncio workers) on a background thread via
:class:`ServiceThread`, but swaps the engine-backed runner for a stub
so the scheduling behaviour — coalescing, retry, admission control,
breaker degradation, graceful drain — is exercised in milliseconds and
with injectable failures.
"""

import json
import threading
import time
from concurrent.futures import Future

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import canonical_dumps
from repro.service.queue import JobState
from repro.service.server import ServiceConfig, ServiceThread

SPEC = {"workloads": ["cg"], "scale": 1}
OTHER_SPEC = {"workloads": ["lu"], "scale": 1}
THIRD_SPEC = {"workloads": ["fft"], "scale": 1}


class StubRunner:
    """An injectable runner: counts executions, optionally blocks or
    fails, resolves its futures on a helper thread."""

    def __init__(self, *, result=None, block=False, fail_times=0):
        self.result_doc = result if result is not None else {"value": 42}
        self.block = block
        self.fail_times = fail_times
        self.release = threading.Event()
        self.calls = 0
        self.degraded_seen = []
        self.cancel_calls = 0
        self._lock = threading.Lock()

    def __call__(self, job, degraded):
        with self._lock:
            self.calls += 1
            call = self.calls
        self.degraded_seen.append(degraded)
        future = Future()

        def body():
            if self.block:
                self.release.wait(timeout=30.0)
            if call <= self.fail_times:
                future.set_exception(RuntimeError("injected crash #%d"
                                                  % call))
            else:
                future.set_result(canonical_dumps(self.result_doc))

        threading.Thread(target=body, daemon=True).start()

        def cancel():
            self.cancel_calls += 1
            self.release.set()

        return future, cancel


def fast_config(path, **overrides) -> ServiceConfig:
    kwargs = dict(
        socket_path=str(path),
        workers=2,
        max_queue=8,
        job_timeout_s=10.0,
        max_attempts=3,
        backoff_base_s=0.005,
        backoff_cap_s=0.02,
        backoff_jitter=0.0,
        breaker_threshold=10,
        breaker_reset_s=60.0,
        ledger=False,
        heartbeat_s=0.05,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


def wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def socket_path(tmp_path):
    return str(tmp_path / "service.sock")


class TestBasics:
    def test_ping_and_stats(self, socket_path):
        runner = StubRunner()
        with ServiceThread(fast_config(socket_path), runner=runner,
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                pong = client.ping()
                assert pong["protocol"] == 1
                stats = client.stats()
                assert stats["queue_depth"] == 0
                assert stats["workers"] == 2
                assert stats["breaker"]["state"] == "closed"

    def test_submit_run_roundtrip(self, socket_path):
        runner = StubRunner(result={"answer": 7})
        with ServiceThread(fast_config(socket_path), runner=runner,
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                doc = client.run(SPEC)
                assert doc == {"answer": 7}
                assert runner.calls == 1

    def test_unknown_job_and_bad_spec(self, socket_path):
        with ServiceThread(fast_config(socket_path), runner=StubRunner(),
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                with pytest.raises(ServiceError) as err:
                    client.status("j-999999")
                assert err.value.code == "unknown-job"
                with pytest.raises(ServiceError) as err:
                    client.submit({"workloads": ["cg"], "scael": 2})
                assert err.value.code == "bad-request"
                assert "scael" in err.value.detail


class TestCoalescing:
    def test_eight_concurrent_identical_submissions_run_once(
            self, socket_path):
        runner = StubRunner(block=True, result={"value": 42})
        registry = MetricsRegistry()
        with ServiceThread(fast_config(socket_path), runner=runner,
                           registry=registry):
            clients = [ServiceClient(socket_path) for _ in range(8)]
            acks = [None] * 8
            barrier = threading.Barrier(8)

            def submit(i):
                barrier.wait()
                acks[i] = clients[i].submit(SPEC)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)

            ids = {ack["id"] for ack in acks}
            assert len(ids) == 1                      # ONE job
            assert sum(ack["coalesced"] for ack in acks) == 7
            job_id = ids.pop()

            # All eight submissions are in before anything ran to
            # completion; release the single execution now.
            assert runner.calls == 1
            runner.release.set()

            raws = []
            for client in clients:
                doc = client.result(job_id, timeout_s=10.0)
                assert doc == {"value": 42}
                raws.append(client.last_raw)
            # Byte-identical response lines for every waiter.
            assert len(set(raws)) == 1
            assert b'"result":{"value":42}' in raws[0]

            assert runner.calls == 1                  # still one run
            stats = clients[0].stats()
            metrics = stats["metrics"]
            assert metrics["service.jobs.coalesced"]["value"] == 7
            assert metrics["service.jobs.submitted"]["value"] == 8
            status = clients[0].status(job_id)
            assert status["waiters"] == 8
            for client in clients:
                client.close()

    def test_resubmission_after_completion_is_a_fresh_job(
            self, socket_path):
        runner = StubRunner()
        with ServiceThread(fast_config(socket_path), runner=runner,
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                first = client.submit(SPEC)
                client.result(first["id"], timeout_s=10.0)
                second = client.submit(SPEC)
                assert second["id"] != first["id"]
                assert not second["coalesced"]
                client.result(second["id"], timeout_s=10.0)
                assert runner.calls == 2


class TestRetry:
    def test_crashing_job_retries_then_succeeds(self, socket_path):
        runner = StubRunner(fail_times=2, result={"ok_after": 3})
        registry = MetricsRegistry()
        with ServiceThread(fast_config(socket_path), runner=runner,
                           registry=registry):
            with ServiceClient(socket_path) as client:
                doc = client.run(SPEC, timeout_s=10.0)
                assert doc == {"ok_after": 3}
                assert runner.calls == 3
                stats = client.stats()
                assert stats["metrics"][
                    "service.jobs.retried"]["value"] == 2
                assert stats["metrics"][
                    "service.jobs.completed"]["value"] == 1

    def test_exhausted_retries_fail_structurally(self, socket_path):
        runner = StubRunner(fail_times=99)
        with ServiceThread(fast_config(socket_path), runner=runner,
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                ack = client.submit(SPEC)
                with pytest.raises(ServiceError) as err:
                    client.result(ack["id"], timeout_s=10.0)
                assert err.value.code == "job-failed"
                assert "injected crash" in err.value.detail
                assert err.value.doc["attempts"] == 3
                assert runner.calls == 3


class TestAdmissionControl:
    def test_queue_overflow_returns_structured_overloaded(
            self, socket_path):
        runner = StubRunner(block=True)
        config = fast_config(socket_path, workers=1, max_queue=1)
        with ServiceThread(config, runner=runner,
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                running = client.submit(SPEC)
                assert wait_for(
                    lambda: client.status(running["id"])["state"]
                    == JobState.RUNNING)
                queued = client.submit(OTHER_SPEC)        # fills the queue
                assert not queued["coalesced"]
                with pytest.raises(ServiceError) as err:
                    client.submit(THIRD_SPEC)
                assert err.value.code == "overloaded"
                assert err.value.doc["queue_depth"] == 1
                assert err.value.doc["max_queue"] == 1
                # Identical work still coalesces even at capacity.
                again = client.submit(OTHER_SPEC)
                assert again["coalesced"]
                runner.release.set()
                client.result(queued["id"], timeout_s=10.0)

    def test_cancel_queued_job(self, socket_path):
        runner = StubRunner(block=True)
        config = fast_config(socket_path, workers=1, max_queue=4)
        with ServiceThread(config, runner=runner,
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                running = client.submit(SPEC)
                assert wait_for(
                    lambda: client.status(running["id"])["state"]
                    == JobState.RUNNING)
                queued = client.submit(OTHER_SPEC)
                cancelled = client.cancel(queued["id"])
                assert cancelled["state"] == JobState.CANCELLED
                with pytest.raises(ServiceError) as err:
                    client.result(queued["id"], timeout_s=1.0)
                assert err.value.code == "cancelled"
                assert runner.calls == 1              # never executed
                runner.release.set()

    def test_result_wait_timeout(self, socket_path):
        runner = StubRunner(block=True)
        with ServiceThread(fast_config(socket_path), runner=runner,
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                ack = client.submit(SPEC)
                with pytest.raises(ServiceError) as err:
                    client.result(ack["id"], timeout_s=0.05)
                assert err.value.code == "timeout"
                runner.release.set()
                doc = client.result(ack["id"], timeout_s=10.0)
                assert doc == {"value": 42}


class TestBreakerDegradation:
    def test_open_breaker_degrades_to_serial(self, socket_path):
        runner = StubRunner(fail_times=1)
        config = fast_config(socket_path, workers=1, breaker_threshold=1)
        with ServiceThread(config, runner=runner,
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                doc = client.run(SPEC, timeout_s=10.0)
                assert doc == {"value": 42}
                # Attempt 1 (pool path) crashed and opened the breaker;
                # attempt 2 ran degraded.
                assert runner.degraded_seen == [False, True]
                stats = client.stats()
                assert stats["breaker"]["state"] == "open"
                assert stats["breaker"]["opens"] == 1
                assert stats["metrics"][
                    "service.jobs.degraded"]["value"] == 1


class TestShutdown:
    def test_graceful_shutdown_drains_in_flight_jobs(self, socket_path):
        runner = StubRunner(block=True, result={"drained": True})
        config = fast_config(socket_path, workers=1)
        handle = ServiceThread(config, runner=runner,
                               registry=MetricsRegistry()).start()
        client = ServiceClient(socket_path)
        waiter = ServiceClient(socket_path)
        try:
            ack = client.submit(SPEC)
            assert wait_for(
                lambda: client.status(ack["id"])["state"]
                == JobState.RUNNING)
            results = {}

            def fetch():
                results["doc"] = waiter.result(ack["id"], timeout_s=10.0)

            fetcher = threading.Thread(target=fetch)
            fetcher.start()
            # Let the job finish shortly after the drain begins.
            threading.Timer(0.2, runner.release.set).start()
            response = client.shutdown(drain=True)
            assert response["drained"] == 1
            fetcher.join(timeout=10.0)
            assert results["doc"] == {"drained": True}
            # After shutdown the service is gone: a draining daemon
            # answers `shutting-down`, a stopped one has no socket.
            with pytest.raises((ServiceError, OSError)):
                ServiceClient(socket_path).submit(OTHER_SPEC)
        finally:
            waiter.close()
            handle.stop()

    def test_shutdown_rejects_new_submissions_while_draining(
            self, socket_path):
        runner = StubRunner()
        handle = ServiceThread(fast_config(socket_path), runner=runner,
                               registry=MetricsRegistry()).start()
        client = ServiceClient(socket_path)
        try:
            client.shutdown(drain=True)
        finally:
            handle.stop()


class TestRequestLog:
    def test_requests_are_logged_as_jsonl(self, tmp_path, socket_path):
        log_path = tmp_path / "requests.jsonl"
        config = fast_config(socket_path, request_log=str(log_path))
        with ServiceThread(config, runner=StubRunner(),
                           registry=MetricsRegistry()):
            with ServiceClient(socket_path) as client:
                client.ping()
                client.run(SPEC)
        lines = [json.loads(line)
                 for line in log_path.read_text().splitlines()]
        ops = [entry["op"] for entry in lines]
        assert "ping" in ops and "submit" in ops and "result" in ops
        assert all(entry["ok"] for entry in lines)
