"""The service's synchronous core under a fake clock.

Everything in :mod:`repro.service.queue` is wall-clock-free by
construction; these tests pin the exact scheduling contract — FIFO
within priority, admission control, coalescing, the backoff schedule's
numeric values, and every circuit-breaker transition — without a
single ``sleep``.
"""

import random

import pytest

from repro.service.queue import (
    CircuitBreaker,
    InFlightTable,
    Job,
    JobState,
    PriorityJobQueue,
    QueueFull,
    backoff_delay,
    backoff_schedule,
)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_job(job_id: str, priority: int = 0, key: str = "") -> Job:
    return Job(id=job_id, kind="experiment", key=key or job_id,
               request={}, priority=priority)


class TestPriorityJobQueue:
    def test_fifo_within_priority(self):
        queue = PriorityJobQueue(maxsize=16, clock=FakeClock())
        for name in ("a", "b", "c"):
            queue.push(make_job(name))
        assert [queue.pop().id for _ in range(3)] == ["a", "b", "c"]

    def test_higher_priority_first_fifo_within(self):
        queue = PriorityJobQueue(maxsize=16, clock=FakeClock())
        queue.push(make_job("low-1", priority=0))
        queue.push(make_job("high-1", priority=5))
        queue.push(make_job("low-2", priority=0))
        queue.push(make_job("high-2", priority=5))
        order = [queue.pop().id for _ in range(4)]
        assert order == ["high-1", "high-2", "low-1", "low-2"]

    def test_push_stamps_submitted_at_from_clock(self):
        clock = FakeClock(start=42.0)
        queue = PriorityJobQueue(maxsize=4, clock=clock)
        job = make_job("a")
        queue.push(job)
        assert job.submitted_at == 42.0

    def test_admission_control_raises_queue_full(self):
        queue = PriorityJobQueue(maxsize=2, clock=FakeClock())
        queue.push(make_job("a"))
        queue.push(make_job("b"))
        with pytest.raises(QueueFull) as err:
            queue.push(make_job("c"))
        assert err.value.depth == 2
        assert err.value.maxsize == 2
        # Popping frees capacity again.
        queue.pop()
        queue.push(make_job("c"))
        assert len(queue) == 2

    def test_discard_is_lazy_and_pop_skips(self):
        queue = PriorityJobQueue(maxsize=4, clock=FakeClock())
        first, second = make_job("a"), make_job("b")
        queue.push(first)
        queue.push(second)
        assert queue.discard(first)
        assert first.state == JobState.CANCELLED
        assert len(queue) == 1            # live count drops immediately
        assert queue.pop() is second      # heap entry skipped lazily
        assert queue.pop() is None

    def test_discard_running_job_is_a_noop(self):
        queue = PriorityJobQueue(maxsize=4, clock=FakeClock())
        job = make_job("a")
        queue.push(job)
        job.state = JobState.RUNNING
        assert not queue.discard(job)

    def test_empty_pop_returns_none(self):
        assert PriorityJobQueue(clock=FakeClock()).pop() is None

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PriorityJobQueue(maxsize=0)


class TestInFlightTable:
    def test_coalesces_on_identical_key(self):
        table = InFlightTable()
        job = make_job("a", key="digest-1")
        table.add(job)
        assert table.get("digest-1") is job
        assert table.get("digest-2") is None

    def test_finished_jobs_fall_out(self):
        table = InFlightTable()
        job = make_job("a", key="digest-1")
        table.add(job)
        job.state = JobState.DONE
        assert table.get("digest-1") is None
        assert len(table) == 0

    def test_running_jobs_still_coalesce(self):
        table = InFlightTable()
        job = make_job("a", key="digest-1")
        table.add(job)
        job.state = JobState.RUNNING
        assert table.get("digest-1") is job

    def test_remove_only_drops_the_same_job(self):
        table = InFlightTable()
        first = make_job("a", key="k")
        second = make_job("b", key="k")
        table.add(first)
        table.add(second)     # replaced
        table.remove(first)   # not the registered job: no-op
        assert table.get("k") is second
        table.remove(second)
        assert table.get("k") is None


class TestBackoff:
    def test_exact_schedule_without_jitter(self):
        schedule = backoff_schedule(6, base=0.25, cap=8.0, jitter=0.0)
        assert schedule == [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]

    def test_cap_applies(self):
        assert backoff_delay(50, base=0.25, cap=8.0, jitter=0.0) == 8.0

    def test_jitter_bounds_with_seeded_rng(self):
        rng = random.Random(1234)
        for attempt in range(8):
            bare = backoff_delay(attempt, jitter=0.0)
            jittered = backoff_delay(attempt, jitter=0.25, rng=rng)
            assert bare <= jittered <= bare * 1.25

    def test_jitter_is_deterministic_under_a_seed(self):
        first = backoff_schedule(5, jitter=0.25, rng=random.Random(7))
        second = backoff_schedule(5, jitter=0.25, rng=random.Random(7))
        assert first == second

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(-1)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=30.0,
                                 clock=clock)
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_single_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=30.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(29.9)
        assert not breaker.allow()            # still open
        clock.advance(0.2)
        assert breaker.allow()                # the half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()            # only ONE probe
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.closes == 1
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_for_full_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=30.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()                # probe
        breaker.record_failure()              # probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        clock.advance(29.9)
        assert not breaker.allow()            # full window restarts
        clock.advance(0.2)
        assert breaker.allow()

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
