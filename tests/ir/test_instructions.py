"""Tests for instruction construction, use lists, and mutation."""

import pytest

from repro.ir import (
    BOOL,
    F64,
    GEP,
    I64,
    VOID,
    Alloca,
    BinOp,
    Cmp,
    CondBr,
    Constant,
    Function,
    IRBuilder,
    Jump,
    Load,
    Phi,
    Prefetch,
    Ret,
    Store,
    pointer_to,
)


def make_func():
    func = Function("f", [pointer_to(F64), I64], ["A", "n"], VOID)
    block = func.add_block("entry")
    return func, block, IRBuilder(block)


class TestUseLists:
    def test_operands_register_uses(self):
        func, block, b = make_func()
        n = func.arg_named("n")
        add = b.add(n, Constant(I64, 1))
        assert add in n.uses

    def test_replace_all_uses_with(self):
        func, block, b = make_func()
        n = func.arg_named("n")
        one = Constant(I64, 1)
        add = b.add(n, one)
        mul = b.mul(add, n)
        add.replace_all_uses_with(one)
        assert mul.operands[0] is one
        assert mul not in add.uses
        assert mul in one.uses

    def test_duplicate_operand_counted_twice(self):
        func, block, b = make_func()
        n = func.arg_named("n")
        add = b.add(n, n)
        assert n.uses.count(add) == 2

    def test_erase_from_parent_drops_uses(self):
        func, block, b = make_func()
        n = func.arg_named("n")
        add = b.add(n, Constant(I64, 2))
        add.erase_from_parent()
        assert add not in n.uses
        assert add not in block.instructions

    def test_replace_operand_single_slot(self):
        func, block, b = make_func()
        n = func.arg_named("n")
        two = Constant(I64, 2)
        three = Constant(I64, 3)
        add = b.add(n, two)
        add.replace_operand(two, three)
        assert add.rhs is three
        assert add not in two.uses


class TestTypeChecking:
    def test_binop_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinOp("add", Constant(I64, 1), Constant(F64, 1.0))

    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("frobnicate", Constant(I64, 1), Constant(I64, 1))

    def test_cmp_yields_bool(self):
        cmp = Cmp("slt", Constant(I64, 1), Constant(I64, 2))
        assert cmp.type == BOOL

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ValueError):
            Cmp("ult", Constant(I64, 1), Constant(I64, 2))

    def test_gep_requires_pointer_base(self):
        with pytest.raises(TypeError):
            GEP(Constant(I64, 0), Constant(I64, 0))

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(Constant(I64, 0))

    def test_store_value_must_match_pointee(self):
        func, block, b = make_func()
        a = func.arg_named("A")
        with pytest.raises(TypeError):
            Store(Constant(I64, 1), a)  # A is f64*

    def test_prefetch_requires_pointer(self):
        with pytest.raises(TypeError):
            Prefetch(Constant(I64, 0))


class TestGEP:
    def test_element_size_from_pointee(self):
        func, block, b = make_func()
        gep = b.gep(func.arg_named("A"), Constant(I64, 3))
        assert gep.element_size == 8

    def test_gep_result_is_same_pointer_type(self):
        func, block, b = make_func()
        a = func.arg_named("A")
        gep = b.gep(a, Constant(I64, 1))
        assert gep.type == a.type


class TestTerminators:
    def test_jump_successors(self):
        func, block, b = make_func()
        target = func.add_block("t")
        jump = Jump(target)
        assert jump.successors() == [target]

    def test_condbr_successors_and_replace(self):
        func, block, b = make_func()
        t1, t2, t3 = (func.add_block(x) for x in "xyz")
        br = CondBr(Cmp("eq", Constant(I64, 0), Constant(I64, 0)), t1, t2)
        assert br.successors() == [t1, t2]
        br.replace_successor(t1, t3)
        assert br.successors() == [t3, t2]

    def test_ret_value_optional(self):
        assert Ret().value is None
        assert Ret(Constant(I64, 7)).value is not None

    def test_cannot_append_past_terminator(self):
        func, block, b = make_func()
        b.ret()
        with pytest.raises(ValueError):
            block.append(Jump(block))


class TestPhi:
    def test_incoming_tracked_with_blocks(self):
        func, entry, b = make_func()
        other = func.add_block("other")
        phi = Phi(I64)
        phi.add_incoming(Constant(I64, 1), entry)
        phi.add_incoming(Constant(I64, 2), other)
        assert phi.incoming_for_block(entry).value == 1
        assert phi.incoming_for_block(other).value == 2

    def test_incoming_type_mismatch_rejected(self):
        func, entry, b = make_func()
        phi = Phi(I64)
        with pytest.raises(TypeError):
            phi.add_incoming(Constant(F64, 1.0), entry)

    def test_remove_incoming_block(self):
        func, entry, b = make_func()
        other = func.add_block("other")
        value = Constant(I64, 5)
        phi = Phi(I64)
        phi.add_incoming(value, entry)
        phi.add_incoming(Constant(I64, 6), other)
        phi.remove_incoming_block(entry)
        assert phi.incoming_for_block(entry) is None
        assert phi not in value.uses

    def test_clone_preserves_incoming(self):
        func, entry, b = make_func()
        phi = Phi(I64)
        phi.add_incoming(Constant(I64, 1), entry)
        clone = phi.clone()
        assert clone.incoming_blocks == [entry]
        assert clone.operands[0].value == 1


class TestClone:
    def test_clone_shares_operands_but_not_identity(self):
        func, block, b = make_func()
        n = func.arg_named("n")
        add = b.add(n, Constant(I64, 1))
        clone = add.clone()
        assert clone is not add
        assert clone.lhs is n
        assert clone.op == "add"
        assert clone in n.uses

    def test_alloca_clone_keeps_allocated_type(self):
        inst = Alloca(F64)
        clone = inst.clone()
        assert clone.allocated_type == F64
