"""Tests for IRBuilder, Function/Module structure and the verifier."""

import pytest

from repro.ir import (
    F64,
    I64,
    VOID,
    Constant,
    Function,
    GlobalVariable,
    IRBuilder,
    Jump,
    Module,
    VerificationError,
    format_function,
    format_module,
    pointer_to,
    verify_function,
    verify_module,
)


def simple_function():
    func = Function("loop", [I64], ["n"], VOID)
    entry = func.add_block("entry")
    header = func.add_block("header")
    body = func.add_block("body")
    exit_block = func.add_block("exit")

    b = IRBuilder(entry)
    b.jump(header)

    b.set_block(header)
    phi = b.phi(I64, name="i")
    cond = b.cmp("slt", phi, func.arg_named("n"))
    b.condbr(cond, body, exit_block)

    b.set_block(body)
    nxt = b.add(phi, Constant(I64, 1))
    b.jump(header)

    phi.add_incoming(Constant(I64, 0), entry)
    phi.add_incoming(nxt, body)

    b.set_block(exit_block)
    b.ret()
    return func


class TestBuilder:
    def test_builds_verifiable_loop(self):
        func = simple_function()
        verify_function(func)

    def test_names_are_unique(self):
        func = Function("f", [I64, I64], ["a", "b"], I64)
        b = IRBuilder(func.add_block("entry"))
        x = b.add(func.args[0], func.args[1], name="x")
        y = b.add(x, func.args[1], name="x")
        assert x.name != y.name
        b.ret(y)
        verify_function(func)

    def test_alloca_lands_in_entry_block(self):
        func = Function("f", [], [], VOID)
        entry = func.add_block("entry")
        other = func.add_block("other")
        b = IRBuilder(other)
        slot = b.alloca(F64, name="tmp")
        assert slot.parent is entry

    def test_builder_without_block_raises(self):
        b = IRBuilder()
        with pytest.raises(ValueError):
            b.add(Constant(I64, 1), Constant(I64, 2))


class TestFunctionStructure:
    def test_entry_is_first_block(self):
        func = simple_function()
        assert func.entry.name == "entry"

    def test_block_named_lookup(self):
        func = simple_function()
        assert func.block_named("header") is func.blocks[1]
        with pytest.raises(KeyError):
            func.block_named("nope")

    def test_predecessors_and_successors(self):
        func = simple_function()
        header = func.block_named("header")
        preds = {b.name for b in header.predecessors()}
        assert preds == {"entry", "body"}
        succs = {b.name for b in header.successors()}
        assert succs == {"body", "exit"}

    def test_arg_named(self):
        func = simple_function()
        assert func.arg_named("n").index == 0
        with pytest.raises(KeyError):
            func.arg_named("missing")

    def test_instructions_iterates_all_blocks(self):
        func = simple_function()
        opcodes = [i.opcode for i in func.instructions()]
        assert "phi" in opcodes and "ret" in opcodes


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function(Function("f", [], [], VOID))
        with pytest.raises(ValueError):
            module.add_function(Function("f", [], [], VOID))

    def test_tasks_filtered(self):
        module = Module("m")
        module.add_function(Function("helper", [], [], VOID))
        task = Function("work", [], [], VOID, is_task=True)
        module.add_function(task)
        assert module.tasks() == [task]

    def test_globals(self):
        module = Module("m")
        gv = GlobalVariable(F64, "table", size_elems=16)
        module.add_global(gv)
        assert gv.type == pointer_to(F64)
        with pytest.raises(ValueError):
            module.add_global(GlobalVariable(F64, "table"))


class TestVerifier:
    def test_detects_missing_terminator(self):
        func = Function("f", [], [], VOID)
        block = func.add_block("entry")
        b = IRBuilder(block)
        b.add(Constant(I64, 1), Constant(I64, 2))
        with pytest.raises(VerificationError):
            verify_function(func)

    def test_detects_foreign_block_target(self):
        func = simple_function()
        stranger = Function("g", [], [], VOID)
        foreign = stranger.add_block("foreign")
        func.block_named("exit").instructions[-1].erase_from_parent()
        exit_block = func.block_named("exit")
        jump = Jump(foreign)
        jump.parent = exit_block
        exit_block.instructions.append(jump)
        with pytest.raises(VerificationError):
            verify_function(func)

    def test_detects_phi_pred_mismatch(self):
        func = simple_function()
        header = func.block_named("header")
        phi = header.phis()[0]
        phi.remove_incoming_block(func.block_named("body"))
        with pytest.raises(VerificationError):
            verify_function(func)

    def test_verify_module_aggregates(self):
        module = Module("m")
        func = Function("broken", [], [], VOID)
        func.add_block("entry")
        module.add_function(func)
        with pytest.raises(VerificationError):
            verify_module(module)


class TestPrinter:
    def test_format_function_mentions_blocks_and_args(self):
        text = format_function(simple_function())
        assert "@loop" in text
        assert "entry:" in text
        assert "phi" in text

    def test_format_module_includes_globals(self):
        module = Module("m")
        module.add_global(GlobalVariable(F64, "w", size_elems=4))
        module.add_function(simple_function())
        text = format_module(module)
        assert "global @w" in text
        assert "@loop" in text
