"""Tests for the IR type system."""

import pytest

from repro.ir import (
    BOOL,
    F32,
    F64,
    I8,
    I32,
    I64,
    VOID,
    FloatType,
    IntType,
    PointerType,
    pointer_to,
)


class TestStructuralEquality:
    def test_same_width_ints_equal(self):
        assert IntType(32) == IntType(32)

    def test_different_width_ints_differ(self):
        assert IntType(32) != IntType(64)

    def test_int_is_not_float(self):
        assert IntType(32) != FloatType(32)

    def test_pointer_equality_follows_pointee(self):
        assert pointer_to(F64) == pointer_to(F64)
        assert pointer_to(F64) != pointer_to(F32)

    def test_types_usable_as_dict_keys(self):
        table = {IntType(64): "a", pointer_to(F64): "b"}
        assert table[I64] == "a"
        assert table[pointer_to(FloatType(64))] == "b"

    def test_nested_pointer_equality(self):
        assert pointer_to(pointer_to(I32)) == pointer_to(pointer_to(I32))


class TestSizes:
    @pytest.mark.parametrize("ty,size", [
        (BOOL, 1), (I8, 1), (I32, 4), (I64, 8), (F32, 4), (F64, 8),
    ])
    def test_scalar_sizes(self, ty, size):
        assert ty.size_bytes == size

    def test_pointer_is_eight_bytes(self):
        assert pointer_to(I8).size_bytes == 8

    def test_void_has_no_size(self):
        assert VOID.size_bytes == 0


class TestPredicates:
    def test_kind_predicates(self):
        assert I64.is_integer() and not I64.is_float()
        assert F32.is_float() and not F32.is_pointer()
        assert pointer_to(F64).is_pointer()
        assert VOID.is_void()


class TestInvalidTypes:
    def test_unsupported_int_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(12)

    def test_unsupported_float_width_rejected(self):
        with pytest.raises(ValueError):
            FloatType(16)

    def test_pointer_to_void_rejected(self):
        with pytest.raises(ValueError):
            PointerType(VOID)
