"""Workload-framework helpers: deterministic fills, compile caching."""

from hypothesis import given, strategies as st

from repro.sim.timing import SLOT_COSTS, issue_slots
from repro.interp.interpreter import ExecutionTrace
from repro.workloads import fill_floats, fill_ints
from repro.workloads.base import MANUAL_SUFFIX, PaperRow


class TestFills:
    def test_fill_floats_deterministic(self):
        assert fill_floats(16, seed=7) == fill_floats(16, seed=7)
        assert fill_floats(16, seed=7) != fill_floats(16, seed=8)

    def test_fill_floats_in_unit_interval(self):
        assert all(0.0 < v < 1.01 for v in fill_floats(500))

    @given(st.integers(1, 200), st.integers(2, 1000))
    def test_fill_ints_in_range(self, n, modulo):
        values = fill_ints(n, modulo)
        assert len(values) == n
        assert all(0 <= v < modulo for v in values)

    def test_fill_ints_deterministic(self):
        assert fill_ints(32, 100, seed=3) == fill_ints(32, 100, seed=3)


class TestIssueSlots:
    def test_default_cost_is_one(self):
        trace = ExecutionTrace(by_opcode={"add": 10})
        assert issue_slots(trace) == 10

    def test_weighted_costs(self):
        trace = ExecutionTrace(by_opcode={"fdiv": 2, "fmul": 3, "gep": 100})
        assert issue_slots(trace) == 2 * SLOT_COSTS["fdiv"] + 3 * SLOT_COSTS["fmul"]

    def test_address_math_is_free(self):
        assert SLOT_COSTS["gep"] == 0
        assert SLOT_COSTS["phi"] == 0


class TestFrameworkConventions:
    def test_manual_suffix_matches_sources(self):
        from repro.workloads import ALL_WORKLOADS
        for cls in ALL_WORKLOADS:
            source = cls().source()
            assert MANUAL_SUFFIX in source, cls.name

    def test_paper_rows_complete(self):
        from repro.workloads import ALL_WORKLOADS
        for cls in ALL_WORKLOADS:
            row = cls.paper
            assert isinstance(row, PaperRow)
            assert row.tasks > 0
            assert 0 <= row.affine_loops <= row.total_loops
