"""Workload compilation, classification (Table 1 structure), numerics."""

import pytest

from repro.interp import Interpreter, SimMemory
from repro.ir import F64, verify_function
from repro.workloads import ALL_WORKLOADS, workload_by_name


@pytest.fixture(scope="module")
def compiled_all():
    return {cls.name: cls().compile() for cls in ALL_WORKLOADS}


class TestClassification:
    """The compile-time half of Table 1 must match the paper exactly."""

    @pytest.mark.parametrize("name,affine,total", [
        ("lu", 3, 3), ("cholesky", 3, 3), ("fft", 0, 6), ("lbm", 0, 1),
        ("libq", 0, 6), ("cigar", 0, 1), ("cg", 0, 2),
    ])
    def test_affine_loop_counts_match_paper(self, compiled_all, name,
                                            affine, total):
        compiled = compiled_all[name]
        assert compiled.affine_loops() == affine
        assert compiled.total_loops() == total

    def test_affine_workloads_use_polyhedral_path(self, compiled_all):
        for name in ("lu", "cholesky"):
            for result in compiled_all[name].results.values():
                assert result.method == "affine"

    def test_non_affine_workloads_use_skeleton_path(self, compiled_all):
        for name in ("fft", "lbm", "libq", "cigar", "cg"):
            for result in compiled_all[name].results.values():
                assert result.method == "skeleton"

    def test_every_task_has_both_access_versions(self, compiled_all):
        for compiled in compiled_all.values():
            for kind in compiled.kinds.values():
                assert kind.access is not None, kind.name
                assert kind.manual_access is not None, kind.name
                verify_function(kind.access)

    def test_access_functions_added_to_module(self, compiled_all):
        compiled = compiled_all["lu"]
        assert "lu_diag_access" in compiled.module.functions


class TestInstantiation:
    def test_every_workload_builds_tasks(self, compiled_all):
        for cls in ALL_WORKLOADS:
            w = cls()
            memory, instances, _ = w.instantiate(
                scale=1, compiled=compiled_all[w.name]
            )
            assert instances, w.name
            assert all(i.kind.execute is not None for i in instances)

    def test_scale_grows_task_count(self, compiled_all):
        w = workload_by_name("libq")
        _, small, _ = w.instantiate(scale=1, compiled=compiled_all["libq"])
        _, big, _ = w.instantiate(scale=2, compiled=compiled_all["libq"])
        assert len(big) > len(small)


class TestLUNumerics:
    def test_lu_diag_matches_reference(self, compiled_all):
        """The diagonal task is a complete small LU factorization."""
        compiled = compiled_all["lu"]
        func = compiled.kinds["lu_diag"].execute
        N = B = 6
        values = [1.0 if (i // N) != (i % N) else N + 2.0
                  for i in range(N * N)]
        for i in range(N * N):
            values[i] += 0.01 * i

        memory = SimMemory()
        base = memory.alloc_array(8, N * N, "A", init=list(values))
        Interpreter(memory).run(func, [base, N, 0, B])
        got = memory.read_array(base, 8, N * N, F64)

        # Pure-python Doolittle reference.
        ref = [list(values[r * N:(r + 1) * N]) for r in range(N)]
        for i in range(B):
            for j in range(i + 1, B):
                ref[j][i] /= ref[i][i]
                for k in range(i + 1, B):
                    ref[j][k] -= ref[j][i] * ref[i][k]
        flat = [ref[r][c] for r in range(N) for c in range(N)]
        assert got == pytest.approx(flat)

    def test_access_version_does_not_change_matrix(self, compiled_all):
        compiled = compiled_all["lu"]
        kind = compiled.kinds["lu_diag"]
        N = B = 6
        memory = SimMemory()
        base = memory.alloc_array(
            8, N * N, "A", init=[float(i + 1) for i in range(N * N)]
        )
        before = memory.read_array(base, 8, N * N, F64)
        Interpreter(memory).run(kind.access, [base, N, 0, B])
        assert memory.read_array(base, 8, N * N, F64) == before


class TestAccessCoverage:
    """Per-workload: the access version prefetches what execute loads
    unconditionally (conditional reads are legitimately dropped)."""

    @pytest.mark.parametrize("name,task_index", [
        ("lu", 0), ("cholesky", 0), ("cigar", 0), ("cg", 0), ("libq", 0),
    ])
    def test_first_task_coverage(self, compiled_all, name, task_index):
        w = workload_by_name(name)
        memory, instances, compiled = w.instantiate(
            scale=1, compiled=compiled_all[name]
        )
        instance = instances[task_index]
        loads, prefetches = set(), set()
        Interpreter(memory, observer=lambda e: prefetches.add(e.address)
                    if e.kind == "prefetch" else None).run(
            instance.kind.access, instance.args)
        Interpreter(memory, observer=lambda e: loads.add(e.address)
                    if e.kind == "load" else None).run(
            instance.kind.execute, instance.args)
        covered = len(loads & prefetches) / max(1, len(loads))
        # Affine tasks cover everything; skeletons cover at least the
        # unconditional reads.
        assert covered >= 0.5, "%s covered only %.0f%%" % (name, covered * 100)

    def test_lu_coverage_complete(self, compiled_all):
        w = workload_by_name("lu")
        memory, instances, _ = w.instantiate(
            scale=1, compiled=compiled_all["lu"]
        )
        instance = instances[0]
        loads, prefetches = set(), set()
        Interpreter(memory, observer=lambda e: prefetches.add(e.address)
                    if e.kind == "prefetch" else None).run(
            instance.kind.access, instance.args)
        Interpreter(memory, observer=lambda e: loads.add(e.address)
                    if e.kind == "load" else None).run(
            instance.kind.execute, instance.args)
        assert loads <= prefetches
