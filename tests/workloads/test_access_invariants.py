"""Cross-workload safety invariants of every generated access version.

These are the properties that make the access phase a *legal* prefetch
slice (Section 5): it never writes memory, it always prefetches
something, it is verifier-clean, and it contains no calls (everything
was inlined first).  Checked for all 21 task kinds across the 7
workloads, for both the compiler-generated and the hand-written access
versions.
"""

import pytest

from repro.ir import Call, Prefetch, Store, verify_function
from repro.workloads import ALL_WORKLOADS


@pytest.fixture(scope="module")
def all_compiled():
    return [cls().compile() for cls in ALL_WORKLOADS]


def all_kinds(all_compiled):
    for compiled in all_compiled:
        for kind in compiled.kinds.values():
            yield compiled.name, kind


class TestAccessVersionInvariants:
    def test_every_access_version_verifies(self, all_compiled):
        for name, kind in all_kinds(all_compiled):
            verify_function(kind.access)
            verify_function(kind.manual_access)

    def test_no_stores_anywhere(self, all_compiled):
        for name, kind in all_kinds(all_compiled):
            for func in (kind.access, kind.manual_access):
                stores = [i for i in func.instructions()
                          if isinstance(i, Store)]
                assert not stores, "%s/%s writes memory" % (name, func.name)

    def test_no_calls_survive_inlining(self, all_compiled):
        for name, kind in all_kinds(all_compiled):
            calls = [i for i in kind.access.instructions()
                     if isinstance(i, Call)]
            assert not calls, "%s/%s still calls" % (name, kind.name)

    def test_every_access_version_prefetches(self, all_compiled):
        for name, kind in all_kinds(all_compiled):
            prefetches = [i for i in kind.access.instructions()
                          if isinstance(i, Prefetch)]
            assert prefetches, "%s/%s prefetches nothing" % (name, kind.name)

    def test_signatures_match_execute_version(self, all_compiled):
        for name, kind in all_kinds(all_compiled):
            for func in (kind.access, kind.manual_access):
                assert len(func.args) == len(kind.execute.args)
                assert [a.type for a in func.args] == [
                    a.type for a in kind.execute.args
                ]

    def test_skeleton_access_statically_leaner(self, all_compiled):
        """A skeleton is a slice of the original, so it can only shrink.

        (Affine access versions are *dynamically* leaner — a depth-2
        scan replacing a depth-3 nest — but their generated bound
        computations can be statically larger, so they are exempt.)
        """
        for name, kind in all_kinds(all_compiled):
            if kind.method != "skeleton":
                continue
            if any(isinstance(i, Call) for i in kind.execute.instructions()):
                # The slice is taken after inlining; a compact call site
                # in the execute version is not a fair static baseline.
                continue
            execute_size = sum(len(b) for b in kind.execute.blocks)
            access_size = sum(len(b) for b in kind.access.blocks)
            assert access_size <= execute_size, (
                "%s/%s access not leaner" % (name, kind.name)
            )


class TestDeterminism:
    def test_compilation_is_deterministic(self):
        from repro.ir import format_function
        from repro.workloads import LUWorkload

        a = LUWorkload().compile()
        b = LUWorkload().compile()
        for name in a.kinds:
            assert format_function(a.kinds[name].access) == format_function(
                b.kinds[name].access
            )

    def test_profiling_is_deterministic(self):
        from repro.runtime import TaskStreamProfiler
        from repro.sim import MachineConfig
        from repro.workloads import CGWorkload

        config = MachineConfig()
        w = CGWorkload()
        compiled = w.compile()

        def run():
            memory, tasks, _ = w.instantiate(scale=1, compiled=compiled)
            stream = TaskStreamProfiler(memory, config).profile(tasks, "dae")
            agg = stream.aggregate_execute()
            return (agg.instructions, agg.slots, dict(agg.counts.loads))

        assert run() == run()
