"""Scheduler determinism: pinned tie-breaks for core selection and
steal victims, and byte-identical repeat runs."""

from repro.power import FixedPolicy
from repro.runtime import DAEScheduler, TaskProfile
from repro.runtime.task import TaskInstance, TaskKind
from repro.sim import AccessCounts, MachineConfig, PhaseProfile


def _profile(slots):
    return PhaseProfile(
        instructions=slots, slots=slots, counts=AccessCounts(),
    )


def _task(name, slots):
    kind = TaskKind(name=name, execute=None)
    return TaskProfile(
        instance=TaskInstance(kind, []), execute=_profile(slots),
    )


def _timeline_tuples(result):
    return {
        core: [
            (s.kind, s.start_ns, s.end_ns, s.freq_ghz, s.task)
            for s in segments
        ]
        for core, segments in result.timeline.per_core().items()
    }


def _run(tasks):
    config = MachineConfig()
    return DAEScheduler(config).run(
        tasks, "cae", FixedPolicy(config.fmax), record_timeline=True,
    )


class TestTieBreaks:
    def test_one_task_per_core_lands_in_index_order(self):
        cores = MachineConfig().cores
        tasks = [_task("t%d" % i, 40_000) for i in range(cores)]
        result = _run(tasks)
        assert result.steals == 0
        per_core = result.timeline.per_core()
        for index in range(cores):
            names = {s.task for s in per_core[index] if s.task}
            assert names == {"t%d" % index}

    def test_steal_victim_is_the_lowest_indexed_fullest_queue(self):
        # Round-robin placement: core0 [big0, stealA], core1 [big1,
        # stealB], core2 [small2], core3 [small3].  Cores 2 and 3 finish
        # early and must steal from cores 0 and 1 in that order — the
        # victim tie-break picks the lowest-indexed fullest queue.
        tasks = [
            _task("big0", 400_000),
            _task("big1", 400_000),
            _task("small2", 1_000),
            _task("small3", 1_000),
            _task("stealA", 1_000),
            _task("stealB", 1_000),
        ]
        result = _run(tasks)
        assert result.steals == 2
        per_core = result.timeline.per_core()
        core2_names = {s.task for s in per_core[2] if s.task}
        core3_names = {s.task for s in per_core[3] if s.task}
        assert "stealA" in core2_names
        assert "stealB" in core3_names


class TestRepeatRuns:
    def test_balanced_run_is_byte_identical(self):
        tasks = [_task("t%d" % i, 40_000) for i in range(8)]
        first, second = _run(tasks), _run(tasks)
        assert first.summary() == second.summary()
        assert _timeline_tuples(first) == _timeline_tuples(second)

    def test_stealing_run_is_byte_identical(self):
        tasks = (
            [_task("big%d" % i, 400_000) for i in range(2)]
            + [_task("small%d" % i, 1_000) for i in range(6)]
        )
        first, second = _run(tasks), _run(tasks)
        assert first.steals == second.steals
        assert first.summary() == second.summary()
        assert _timeline_tuples(first) == _timeline_tuples(second)
