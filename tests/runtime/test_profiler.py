"""Task-stream profiler: schemes, cache warm-up, aggregation."""

import pytest

from repro.runtime import ProfileError, TaskStreamProfiler
from repro.sim import MachineConfig
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def cg_setup():
    w = workload_by_name("cg")
    compiled = w.compile()
    return w, compiled


def profile_scheme(setup, scheme):
    w, compiled = setup
    memory, tasks, _ = w.instantiate(scale=1, compiled=compiled)
    return TaskStreamProfiler(memory, MachineConfig()).profile(tasks, scheme)


class TestSchemes:
    def test_cae_has_no_access_phases(self, cg_setup):
        stream = profile_scheme(cg_setup, "cae")
        assert all(t.access is None for t in stream.tasks)

    def test_dae_has_access_phases(self, cg_setup):
        stream = profile_scheme(cg_setup, "dae")
        assert all(t.access is not None for t in stream.tasks)

    def test_manual_uses_manual_functions(self, cg_setup):
        stream = profile_scheme(cg_setup, "manual")
        assert all(t.access is not None for t in stream.tasks)

    def test_unknown_scheme_rejected(self, cg_setup):
        w, compiled = cg_setup
        memory, tasks, _ = w.instantiate(scale=1, compiled=compiled)
        with pytest.raises(ProfileError):
            TaskStreamProfiler(memory, MachineConfig()).profile(tasks, "bogus")


class TestWarmup:
    def test_prefetching_removes_execute_misses(self, cg_setup):
        """The core DAE effect: after the access phase the execute phase
        is (nearly) compute-bound — Section 3.1."""
        cae = profile_scheme(cg_setup, "cae").aggregate_execute()
        dae = profile_scheme(cg_setup, "dae").aggregate_execute()
        cae_misses = (
            cae.counts.loads["mem"] + cae.counts.loads["mem_stream"]
        )
        dae_misses = (
            dae.counts.loads["mem"] + dae.counts.loads["mem_stream"]
        )
        assert dae_misses < cae_misses * 0.25

    def test_access_phase_absorbs_the_misses(self, cg_setup):
        dae = profile_scheme(cg_setup, "dae")
        access = dae.aggregate_access()
        assert access.counts.prefetch_mem_misses > 0

    def test_execute_instruction_counts_equal_across_schemes(self, cg_setup):
        cae = profile_scheme(cg_setup, "cae").aggregate_execute()
        dae = profile_scheme(cg_setup, "dae").aggregate_execute()
        assert cae.instructions == dae.instructions

    def test_access_phase_is_memory_bound(self, cg_setup):
        config = MachineConfig()
        dae = profile_scheme(cg_setup, "dae")
        access = dae.aggregate_access()
        execute = dae.aggregate_execute()
        assert access.memory_boundedness(config) > execute.memory_boundedness(
            config
        )

    def test_access_time_frequency_insensitive(self, cg_setup):
        """The property DVFS exploits: the access phase's wall-clock time
        barely moves between fmin and fmax."""
        config = MachineConfig()
        access = profile_scheme(cg_setup, "dae").aggregate_access()
        t_min = access.time_ns(config.fmin, config)
        t_max = access.time_ns(config.fmax, config)
        execute = profile_scheme(cg_setup, "dae").aggregate_execute()
        e_min = execute.time_ns(config.fmin, config)
        e_max = execute.time_ns(config.fmax, config)
        assert t_min / t_max < e_min / e_max
