"""Task-stream profiler: schemes, cache warm-up, aggregation."""

import pytest

from repro import obs
from repro.runtime import ProfileError, TaskStreamProfiler
from repro.runtime.task import TaskInstance, TaskKind
from repro.sim import MachineConfig
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def cg_setup():
    w = workload_by_name("cg")
    compiled = w.compile()
    return w, compiled


def profile_scheme(setup, scheme):
    w, compiled = setup
    memory, tasks, _ = w.instantiate(scale=1, compiled=compiled)
    return TaskStreamProfiler(memory, MachineConfig()).profile(tasks, scheme)


class TestSchemes:
    def test_cae_has_no_access_phases(self, cg_setup):
        stream = profile_scheme(cg_setup, "cae")
        assert all(t.access is None for t in stream.tasks)

    def test_dae_has_access_phases(self, cg_setup):
        stream = profile_scheme(cg_setup, "dae")
        assert all(t.access is not None for t in stream.tasks)

    def test_manual_uses_manual_functions(self, cg_setup):
        stream = profile_scheme(cg_setup, "manual")
        assert all(t.access is not None for t in stream.tasks)

    def test_unknown_scheme_rejected(self, cg_setup):
        w, compiled = cg_setup
        memory, tasks, _ = w.instantiate(scale=1, compiled=compiled)
        with pytest.raises(ProfileError):
            TaskStreamProfiler(memory, MachineConfig()).profile(tasks, "bogus")


def strip_access(tasks):
    """The same task stream with every access version removed."""
    stripped_kinds = {}
    out = []
    for instance in tasks:
        kind = instance.kind
        if kind.name not in stripped_kinds:
            stripped_kinds[kind.name] = TaskKind(
                name=kind.name, execute=kind.execute,
                access=None, manual_access=None, method="none",
            )
        out.append(TaskInstance(kind=stripped_kinds[kind.name],
                                args=instance.args))
    return out


class TestMissingAccessVersions:
    """Tasks without an access version under 'dae'/'manual' (§ runtime
    fallback): silent coupled profiling by default, ProfileError in
    strict mode, obs warning either way."""

    @pytest.mark.parametrize("scheme", ["dae", "manual"])
    def test_strict_raises_with_task_and_scheme(self, cg_setup, scheme):
        w, compiled = cg_setup
        memory, tasks, _ = w.instantiate(scale=1, compiled=compiled)
        tasks = strip_access(tasks)
        profiler = TaskStreamProfiler(memory, MachineConfig())
        with pytest.raises(ProfileError) as excinfo:
            profiler.profile(tasks, scheme, strict=True)
        message = str(excinfo.value)
        assert tasks[0].name in message
        assert scheme in message

    def test_non_strict_profiles_as_coupled(self, cg_setup):
        w, compiled = cg_setup
        memory, tasks, _ = w.instantiate(scale=1, compiled=compiled)
        stream = TaskStreamProfiler(memory, MachineConfig()).profile(
            strip_access(tasks), "dae"
        )
        assert all(t.access is None for t in stream.tasks)
        assert all(t.execute.instructions > 0 for t in stream.tasks)

    def test_non_strict_emits_warning_event(self, cg_setup):
        w, compiled = cg_setup
        memory, tasks, _ = w.instantiate(scale=1, compiled=compiled)
        with obs.collecting() as col:
            TaskStreamProfiler(memory, MachineConfig()).profile(
                strip_access(tasks), "dae"
            )
        warnings = col.select(name="profiler.missing_access")
        assert warnings
        assert warnings[0].args["scheme"] == "dae"
        assert warnings[0].cat.startswith("warning")
        # One warning per task kind, not per dynamic instance.
        kinds = {event.args["task"] for event in warnings}
        assert len(warnings) == len(kinds)

    def test_strict_ok_when_access_present(self, cg_setup):
        w, compiled = cg_setup
        memory, tasks, _ = w.instantiate(scale=1, compiled=compiled)
        stream = TaskStreamProfiler(memory, MachineConfig()).profile(
            tasks, "dae", strict=True
        )
        assert all(t.access is not None for t in stream.tasks)


class TestWarmup:
    def test_prefetching_removes_execute_misses(self, cg_setup):
        """The core DAE effect: after the access phase the execute phase
        is (nearly) compute-bound — Section 3.1."""
        cae = profile_scheme(cg_setup, "cae").aggregate_execute()
        dae = profile_scheme(cg_setup, "dae").aggregate_execute()
        cae_misses = (
            cae.counts.loads["mem"] + cae.counts.loads["mem_stream"]
        )
        dae_misses = (
            dae.counts.loads["mem"] + dae.counts.loads["mem_stream"]
        )
        assert dae_misses < cae_misses * 0.25

    def test_access_phase_absorbs_the_misses(self, cg_setup):
        dae = profile_scheme(cg_setup, "dae")
        access = dae.aggregate_access()
        assert access.counts.prefetch_mem_misses > 0

    def test_execute_instruction_counts_equal_across_schemes(self, cg_setup):
        cae = profile_scheme(cg_setup, "cae").aggregate_execute()
        dae = profile_scheme(cg_setup, "dae").aggregate_execute()
        assert cae.instructions == dae.instructions

    def test_access_phase_is_memory_bound(self, cg_setup):
        config = MachineConfig()
        dae = profile_scheme(cg_setup, "dae")
        access = dae.aggregate_access()
        execute = dae.aggregate_execute()
        assert access.memory_boundedness(config) > execute.memory_boundedness(
            config
        )

    def test_access_time_frequency_insensitive(self, cg_setup):
        """The property DVFS exploits: the access phase's wall-clock time
        barely moves between fmin and fmax."""
        config = MachineConfig()
        access = profile_scheme(cg_setup, "dae").aggregate_access()
        t_min = access.time_ns(config.fmin, config)
        t_max = access.time_ns(config.fmax, config)
        execute = profile_scheme(cg_setup, "dae").aggregate_execute()
        e_min = execute.time_ns(config.fmin, config)
        e_max = execute.time_ns(config.fmax, config)
        assert t_min / t_max < e_min / e_max
