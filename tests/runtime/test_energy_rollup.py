"""Per-segment energy accounting: the roll-up must be *bit-for-bit*.

Every timeline segment the scheduler records carries an
``EnergyBreakdown``; summing them in emission order must reproduce the
``ScheduleResult`` bucket energies and total exactly (``==`` on floats,
not approx) — on every workload, under every scheme.  That exactness is
what lets the run ledger and the explain reports audit the schedule's
energy from the trace alone.
"""

import pytest

from repro.evaluation import run_all
from repro.obs.timeline import RUNTIME_TASK, energy_attribution
from repro.power.frequency import FrequencyPolicy
from repro.runtime.scheduler import DAEScheduler
from repro.runtime.task import Scheme
from repro.sim.config import MachineConfig

#: (id, profile stream, run scheme, policy) — every scheme the
#: scheduler accepts, under both a fixed and an adaptive policy.
CONFIGS = (
    ("cae-fmax", Scheme.CAE, Scheme.CAE, "fmax"),
    ("dae-optimal", Scheme.DAE, Scheme.DAE, "optimal"),
    ("manual-optimal", Scheme.MANUAL, Scheme.DAE, "optimal"),
    ("dae-minmax", Scheme.DAE, Scheme.DAE, "minmax"),
)


@pytest.fixture(scope="module")
def all_runs():
    """Profiles of every paper workload (the full ×-schemes matrix)."""
    return run_all(cache=False)


def _schedule(run, stream, scheme, policy, config):
    return DAEScheduler(config).run(
        run.profiles[stream.value].tasks, scheme,
        FrequencyPolicy.from_name(policy, config),
        record_timeline=True,
    )


@pytest.mark.parametrize(
    "stream,scheme,policy",
    [row[1:] for row in CONFIGS], ids=[row[0] for row in CONFIGS],
)
class TestBitForBitRollup:
    def test_buckets_and_total_reproduce_exactly(self, all_runs, stream,
                                                 scheme, policy):
        config = MachineConfig()
        for name, run in all_runs.items():
            result = _schedule(run, stream, scheme, policy, config)
            timeline = result.timeline
            prefetch_nj, task_nj, osi_nj = timeline.bucket_energy_nj()
            # Bitwise equality, not approx: the segments are the same
            # floats the scheduler's bucket accounting added, in the
            # same order.
            assert prefetch_nj == result.buckets.prefetch_nj, name
            assert task_nj == result.buckets.task_nj, name
            assert osi_nj == result.buckets.osi_nj, name
            assert timeline.energy_total_nj() == result.energy_nj, name

    def test_invariants_hold(self, all_runs, stream, scheme, policy):
        config = MachineConfig()
        for run in all_runs.values():
            result = _schedule(run, stream, scheme, policy, config)
            # Coverage: per-core segments abut and span the whole run.
            result.timeline.validate(result.time_ns)
            # Energy: segments sum to the schedule total within 1e-9 J.
            result.timeline.validate_energy(result.energy_nj, tol_nj=1.0)


class TestTransitionAccounting:
    @pytest.fixture()
    def scheduled(self, all_runs):
        config = MachineConfig()
        run = next(iter(all_runs.values()))
        return _schedule(run, Scheme.DAE, Scheme.DAE, "minmax", config)

    def test_summary_reports_transition_energy(self, scheduled):
        summary = scheduled.summary()
        assert summary["transition_j"] == scheduled.transition_nj * 1e-9
        # Transition energy is charged inside the O.S.I. bucket.
        assert scheduled.transition_nj <= scheduled.buckets.osi_nj
        assert scheduled.transitions > 0
        assert scheduled.transition_nj > 0.0

    def test_every_transition_has_a_switch_segment(self, scheduled):
        switches = [
            s for s in scheduled.timeline.segments if s.kind == "switch"
        ]
        assert len(switches) == scheduled.transitions
        total = 0.0
        for segment in switches:
            assert segment.energy is not None
            assert segment.energy.transition_nj == segment.energy.energy_nj
            total += segment.energy.energy_nj
        assert total == scheduled.transition_nj

    def test_hidden_switches_are_zero_duration_but_charged(self, scheduled):
        hidden = [
            s for s in scheduled.timeline.segments
            if s.kind == "switch" and s.dur_ns == 0.0
        ]
        # The minmax policy ramps on phase boundaries where the overlap
        # model hides (at least some of) the latency.
        for segment in hidden:
            assert segment.energy.energy_nj > 0.0


class TestAttributionTree:
    def test_tree_is_consistent_with_the_schedule(self, all_runs):
        config = MachineConfig()
        run = next(iter(all_runs.values()))
        result = _schedule(run, Scheme.DAE, Scheme.DAE, "optimal", config)
        tree = energy_attribution(result.timeline)
        assert tree["scheme"] == result.scheme
        assert tree["policy"] == result.policy
        assert tree["energy_nj"] == pytest.approx(result.energy_nj, rel=1e-9)
        # Tasks partition the total (different summation order → approx).
        assert sum(
            node["energy_nj"] for node in tree["tasks"].values()
        ) == pytest.approx(result.energy_nj, rel=1e-9)
        assert sum(
            node["energy_nj"] for node in tree["cores"].values()
        ) == pytest.approx(result.energy_nj, rel=1e-9)
        # Components attribute the total.
        assert (
            tree["dynamic_nj"] + tree["static_nj"] + tree["transition_nj"]
        ) == pytest.approx(result.energy_nj, rel=1e-9)
        # Idle tails / switches / steals belong to the runtime.
        assert RUNTIME_TASK in tree["tasks"]
        assert "idle" in tree["tasks"][RUNTIME_TASK]["phases"]
