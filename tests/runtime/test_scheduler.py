"""DAE scheduler tests: work stealing, DVFS switching, buckets."""

import pytest

from repro.power import FixedPolicy, MinMaxPolicy, OptimalEDPPolicy
from repro.runtime import DAEScheduler, TaskProfile
from repro.runtime.task import TaskInstance, TaskKind
from repro.sim import AccessCounts, MachineConfig, PhaseProfile


def profile(slots=4000, mem=0, pf_mem=0, instructions=None):
    counts = AccessCounts()
    counts.loads["mem"] = mem
    counts.prefetches["mem"] = pf_mem
    return PhaseProfile(
        instructions=instructions if instructions is not None else slots,
        slots=slots, counts=counts,
    )


def make_tasks(n, access=None, execute=None):
    kind = TaskKind(name="k", execute=None)  # functions unused here
    tasks = []
    for _ in range(n):
        tasks.append(TaskProfile(
            instance=TaskInstance(kind, []),
            execute=execute or profile(slots=40_000),
            access=access,
        ))
    return tasks


class TestBasicScheduling:
    def test_cae_runs_all_tasks(self):
        sched = DAEScheduler(MachineConfig())
        result = sched.run(make_tasks(10), "cae", FixedPolicy(
            MachineConfig().fmax))
        assert result.tasks_run == 10
        assert result.time_ns > 0
        assert result.energy_nj > 0

    def test_parallel_speedup_over_serial(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        result = sched.run(make_tasks(16), "cae", FixedPolicy(config.fmax))
        serial_ns = 16 * profile(slots=40_000).time_ns(config.fmax, config)
        # 4 cores: makespan must be close to serial/4.
        assert result.time_ns < serial_ns / 3
        assert result.time_ns >= serial_ns / 4

    def test_work_stealing_balances_uneven_queues(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        # 5 tasks on 4 cores: round robin gives core0 two tasks; with a
        # single long task stream stealing should trigger at most rarely,
        # so construct imbalance: 8 tasks where all big tasks land on one
        # core by ordering.
        big = profile(slots=400_000)
        small = profile(slots=1_000)
        tasks = make_tasks(4, execute=big) + make_tasks(4, execute=small)
        result = sched.run(tasks, "cae", FixedPolicy(config.fmax))
        assert result.tasks_run == 8

    def test_empty_task_list(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        result = sched.run([], "cae", FixedPolicy(config.fmax))
        assert result.time_ns == 0.0
        assert result.tasks_run == 0


class TestDAEPhases:
    def test_dae_runs_access_then_execute(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        access = profile(slots=400, pf_mem=100)
        tasks = make_tasks(8, access=access)
        result = sched.run(tasks, "dae", MinMaxPolicy())
        assert result.buckets.prefetch_ns > 0
        assert result.buckets.task_ns > 0

    def test_task_without_access_falls_back_to_coupled(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        result = sched.run(make_tasks(8, access=None), "dae", MinMaxPolicy())
        assert result.buckets.prefetch_ns == 0.0

    def test_transitions_counted_for_minmax(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        access = profile(slots=400, pf_mem=200)  # long, memory-bound
        tasks = make_tasks(6, access=access)
        result = sched.run(tasks, "dae", MinMaxPolicy())
        assert result.transitions > 0

    def test_no_transitions_when_policy_fixed(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        access = profile(slots=400, pf_mem=200)
        tasks = make_tasks(6, access=access)
        result = sched.run(tasks, "dae", FixedPolicy(config.fmax))
        assert result.transitions == 0

    def test_break_even_guard_skips_tiny_phase_downclock(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        # Access phase far shorter than the 500ns ramp.
        access = profile(slots=40, pf_mem=0)
        tasks = make_tasks(6, access=access)
        result = sched.run(tasks, "dae", MinMaxPolicy())
        assert result.transitions == 0

    def test_zero_latency_transitions_cost_nothing(self):
        access = profile(slots=400, pf_mem=200)
        ideal = DAEScheduler(MachineConfig(dvfs_transition_ns=0.0)).run(
            make_tasks(6, access=access), "dae", MinMaxPolicy()
        )
        real = DAEScheduler(
            MachineConfig(dvfs_overlap=False)  # worst case: stall model
        ).run(make_tasks(6, access=access), "dae", MinMaxPolicy())
        assert ideal.transitions == 0
        assert ideal.buckets.osi_nj < real.buckets.osi_nj
        assert ideal.time_ns < real.time_ns


class TestEnergyAccounting:
    def test_energy_equals_bucket_sum(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        access = profile(slots=400, pf_mem=100)
        result = sched.run(make_tasks(8, access=access), "dae", MinMaxPolicy())
        buckets = result.buckets
        assert result.energy_nj == pytest.approx(
            buckets.prefetch_nj + buckets.task_nj + buckets.osi_nj
        )

    def test_lower_frequency_saves_energy_on_memory_bound(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        memory_bound = profile(slots=100, mem=400)
        tasks_low = make_tasks(8, execute=memory_bound)
        tasks_high = make_tasks(8, execute=memory_bound)
        low = sched.run(tasks_low, "cae", FixedPolicy(config.fmin))
        high = sched.run(tasks_high, "cae", FixedPolicy(config.fmax))
        assert low.energy_nj < high.energy_nj
        assert low.time_ns < high.time_ns * 1.25  # barely slower

    def test_edp_property(self):
        config = MachineConfig()
        sched = DAEScheduler(config)
        result = sched.run(make_tasks(4), "cae", FixedPolicy(config.fmax))
        assert result.edp_js == pytest.approx(
            result.energy_j * result.time_s
        )
