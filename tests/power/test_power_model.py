"""Power model and frequency-policy tests (Section 3.2)."""

from dataclasses import replace

import pytest

from repro.power import (
    EnergyBreakdown,
    FixedPolicy,
    FrequencyPolicy,
    MinMaxPolicy,
    dynamic_power,
    edp,
    effective_capacitance,
    fixed_policy_at,
    optimal_edp_point,
    phase_edp_at,
    phase_energy,
    static_power,
    total_power,
    transition_energy,
)
from repro.sim import AccessCounts, MachineConfig, PhaseProfile
from repro.sim.config import sandybridge_operating_points


def profile(instructions=1000, slots=1000, mem_misses=0):
    counts = AccessCounts()
    counts.loads["mem"] = mem_misses
    return PhaseProfile(instructions=instructions, slots=slots, counts=counts)


class TestCeffModel:
    def test_paper_formula(self):
        config = MachineConfig()
        assert effective_capacitance(0.0, config) == pytest.approx(1.64)
        assert effective_capacitance(2.0, config) == pytest.approx(
            0.19 * 2 + 1.64
        )

    def test_dynamic_power_quadratic_in_voltage(self):
        config = MachineConfig()
        fmax = config.fmax
        fmin = config.fmin
        ratio = dynamic_power(fmax, 1.0, config) / dynamic_power(
            fmin, 1.0, config
        )
        expected = (fmax.freq_ghz * fmax.voltage ** 2) / (
            fmin.freq_ghz * fmin.voltage ** 2
        )
        assert ratio == pytest.approx(expected)

    def test_static_power_scales_with_cores(self):
        config = MachineConfig()
        one = static_power(config.fmax, 1, config)
        four = static_power(config.fmax, 4, config)
        assert four == pytest.approx(4 * one)

    def test_total_power_realistic_magnitude(self):
        config = MachineConfig()
        watts = total_power(config.fmax, 2.0, 4, config)
        assert 20 < watts < 100  # Sandy Bridge package ballpark


class TestEnergyAndEDP:
    def test_phase_energy_is_power_times_time(self):
        config = MachineConfig()
        breakdown = phase_energy(1000.0, config.fmax, 1.0, config)
        assert breakdown.time_ns == 1000.0
        assert breakdown.power_w == pytest.approx(
            total_power(config.fmax, 1.0, 1, config)
        )

    def test_breakdown_addition(self):
        a = EnergyBreakdown(10.0, 100.0)
        b = EnergyBreakdown(5.0, 25.0)
        total = a + b
        assert total.time_ns == 15.0 and total.energy_nj == 125.0

    def test_transition_counts_static_energy_only(self):
        config = MachineConfig()
        breakdown = transition_energy(config, config.fmax)
        assert breakdown.time_ns == config.dvfs_transition_ns
        expected = static_power(config.fmax, 1, config) * breakdown.time_ns
        assert breakdown.energy_nj == pytest.approx(expected)

    def test_edp_units(self):
        assert edp(1e9, 1e9) == pytest.approx(1.0)  # 1 s * 1 J


class TestPolicies:
    def test_minmax_policy(self):
        config = MachineConfig()
        policy = MinMaxPolicy()
        assert policy.access_point(profile(), config) is config.fmin
        assert policy.execute_point(profile(), config) is config.fmax

    def test_fixed_policy(self):
        config = MachineConfig()
        point = config.operating_points[2]
        policy = FixedPolicy(point)
        assert policy.access_point(profile(), config) is point
        assert policy.execute_point(profile(), config) is point

    def test_optimal_picks_low_f_for_memory_bound(self):
        config = MachineConfig()
        memory_bound = profile(instructions=50, slots=50, mem_misses=500)
        point = optimal_edp_point(memory_bound, config)
        assert point.freq_ghz == config.fmin.freq_ghz

    def test_optimal_picks_high_f_for_compute_bound(self):
        config = MachineConfig()
        compute_bound = profile(instructions=100_000, slots=100_000)
        point = optimal_edp_point(compute_bound, config)
        assert point.freq_ghz >= 2.8

    def test_optimal_is_argmin_of_phase_edp(self):
        config = MachineConfig()
        mixed = profile(instructions=5000, slots=5000, mem_misses=40)
        best = optimal_edp_point(mixed, config)
        best_value = phase_edp_at(mixed, best, config)
        for point in config.operating_points:
            assert best_value <= phase_edp_at(mixed, point, config) + 1e-18

    def test_optimal_breaks_ties_toward_lower_frequency(self):
        # A zero-work phase has zero time, hence EDP == 0 at every
        # operating point: a perfect tie, which must resolve to fmin.
        config = MachineConfig()
        empty = PhaseProfile()
        assert all(
            phase_edp_at(empty, p, config) == 0.0
            for p in config.operating_points
        )
        assert optimal_edp_point(empty, config) is config.fmin

    def test_optimal_tie_break_independent_of_point_order(self):
        # Same tie, operating points listed high-to-low: still fmin.
        reversed_config = MachineConfig(
            operating_points=tuple(reversed(sandybridge_operating_points()))
        )
        chosen = optimal_edp_point(PhaseProfile(), reversed_config)
        assert chosen.freq_ghz == pytest.approx(1.6)


class TestFixedFromName:
    def test_fixed_at_exact_point(self):
        config = MachineConfig()
        policy = FrequencyPolicy.from_name("fixed@2.0", config)
        assert isinstance(policy, FixedPolicy)
        assert policy.point.freq_ghz == pytest.approx(2.0)

    def test_fixed_snaps_to_nearest_point(self):
        config = MachineConfig()
        assert FrequencyPolicy.from_name(
            "fixed@2.1", config
        ).point.freq_ghz == pytest.approx(2.0)
        assert FrequencyPolicy.from_name(
            "fixed@3.35", config
        ).point.freq_ghz == pytest.approx(3.4)

    def test_fixed_midpoint_snaps_low(self):
        config = MachineConfig()
        assert fixed_policy_at(2.2, config).point.freq_ghz == pytest.approx(
            2.0
        )

    def test_fixed_out_of_range_rejected(self):
        config = MachineConfig()
        for freq in ("1.0", "3.8"):
            with pytest.raises(ValueError, match="outside the DVFS range"):
                FrequencyPolicy.from_name("fixed@%s" % freq, config)

    def test_fixed_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="frequency in GHz"):
            FrequencyPolicy.from_name("fixed@fast", MachineConfig())

    def test_bare_fixed_needs_frequency(self):
        with pytest.raises(ValueError, match="needs a frequency"):
            FrequencyPolicy.from_name("fixed", MachineConfig())

    def test_tuned_placeholder_until_installed(self):
        with pytest.raises(ValueError, match="no tuning result"):
            FrequencyPolicy.from_name("tuned", MachineConfig())


class TestModelInvariants:
    def test_power_w_is_nj_per_ns(self):
        # nJ/ns == W: the identity EnergyBreakdown.power_w relies on.
        assert EnergyBreakdown(250.0, 1000.0).power_w == pytest.approx(4.0)
        assert EnergyBreakdown(0.0, 1000.0).power_w == 0.0
        config = MachineConfig()
        for point in config.operating_points:
            breakdown = phase_energy(512.0, point, 1.5, config, active_cores=2)
            assert breakdown.power_w == pytest.approx(
                breakdown.energy_nj / breakdown.time_ns
            )
            assert breakdown.power_w == pytest.approx(
                total_power(point, 1.5, 2, config)
            )

    def test_transition_energy_is_static_only(self):
        # "During each DVFS transition we count only the static energy"
        # (Section 6.1): no dependence on the dynamic-power constants.
        config = MachineConfig()
        no_dynamic = replace(config, ceff_slope=0.0, ceff_base=0.0)
        for point in config.operating_points:
            breakdown = transition_energy(config, point)
            assert breakdown.energy_nj == pytest.approx(
                static_power(point, 1, config) * config.dvfs_transition_ns
            )
            assert breakdown.energy_nj == pytest.approx(
                transition_energy(no_dynamic, point).energy_nj
            )

    def test_dynamic_power_monotone_in_f_and_v(self):
        config = MachineConfig()
        points = sandybridge_operating_points()
        for ipc in (0.0, 0.5, 2.0):
            powers = [dynamic_power(p, ipc, config) for p in points]
            assert powers == sorted(powers)
            assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_static_power_monotone_along_vf_line(self):
        config = MachineConfig()
        points = sandybridge_operating_points()
        powers = [static_power(p, 1, config) for p in points]
        assert all(b > a for a, b in zip(powers, powers[1:]))
