"""Power model and frequency-policy tests (Section 3.2)."""

import pytest

from repro.power import (
    EnergyBreakdown,
    FixedPolicy,
    MinMaxPolicy,
    OptimalEDPPolicy,
    dynamic_power,
    edp,
    effective_capacitance,
    optimal_edp_point,
    phase_edp_at,
    phase_energy,
    static_power,
    total_power,
    transition_energy,
)
from repro.sim import AccessCounts, MachineConfig, PhaseProfile


def profile(instructions=1000, slots=1000, mem_misses=0):
    counts = AccessCounts()
    counts.loads["mem"] = mem_misses
    return PhaseProfile(instructions=instructions, slots=slots, counts=counts)


class TestCeffModel:
    def test_paper_formula(self):
        config = MachineConfig()
        assert effective_capacitance(0.0, config) == pytest.approx(1.64)
        assert effective_capacitance(2.0, config) == pytest.approx(
            0.19 * 2 + 1.64
        )

    def test_dynamic_power_quadratic_in_voltage(self):
        config = MachineConfig()
        fmax = config.fmax
        fmin = config.fmin
        ratio = dynamic_power(fmax, 1.0, config) / dynamic_power(
            fmin, 1.0, config
        )
        expected = (fmax.freq_ghz * fmax.voltage ** 2) / (
            fmin.freq_ghz * fmin.voltage ** 2
        )
        assert ratio == pytest.approx(expected)

    def test_static_power_scales_with_cores(self):
        config = MachineConfig()
        one = static_power(config.fmax, 1, config)
        four = static_power(config.fmax, 4, config)
        assert four == pytest.approx(4 * one)

    def test_total_power_realistic_magnitude(self):
        config = MachineConfig()
        watts = total_power(config.fmax, 2.0, 4, config)
        assert 20 < watts < 100  # Sandy Bridge package ballpark


class TestEnergyAndEDP:
    def test_phase_energy_is_power_times_time(self):
        config = MachineConfig()
        breakdown = phase_energy(1000.0, config.fmax, 1.0, config)
        assert breakdown.time_ns == 1000.0
        assert breakdown.power_w == pytest.approx(
            total_power(config.fmax, 1.0, 1, config)
        )

    def test_breakdown_addition(self):
        a = EnergyBreakdown(10.0, 100.0)
        b = EnergyBreakdown(5.0, 25.0)
        total = a + b
        assert total.time_ns == 15.0 and total.energy_nj == 125.0

    def test_transition_counts_static_energy_only(self):
        config = MachineConfig()
        breakdown = transition_energy(config, config.fmax)
        assert breakdown.time_ns == config.dvfs_transition_ns
        expected = static_power(config.fmax, 1, config) * breakdown.time_ns
        assert breakdown.energy_nj == pytest.approx(expected)

    def test_edp_units(self):
        assert edp(1e9, 1e9) == pytest.approx(1.0)  # 1 s * 1 J


class TestPolicies:
    def test_minmax_policy(self):
        config = MachineConfig()
        policy = MinMaxPolicy()
        assert policy.access_point(profile(), config) is config.fmin
        assert policy.execute_point(profile(), config) is config.fmax

    def test_fixed_policy(self):
        config = MachineConfig()
        point = config.operating_points[2]
        policy = FixedPolicy(point)
        assert policy.access_point(profile(), config) is point
        assert policy.execute_point(profile(), config) is point

    def test_optimal_picks_low_f_for_memory_bound(self):
        config = MachineConfig()
        memory_bound = profile(instructions=50, slots=50, mem_misses=500)
        point = optimal_edp_point(memory_bound, config)
        assert point.freq_ghz == config.fmin.freq_ghz

    def test_optimal_picks_high_f_for_compute_bound(self):
        config = MachineConfig()
        compute_bound = profile(instructions=100_000, slots=100_000)
        point = optimal_edp_point(compute_bound, config)
        assert point.freq_ghz >= 2.8

    def test_optimal_is_argmin_of_phase_edp(self):
        config = MachineConfig()
        mixed = profile(instructions=5000, slots=5000, mem_misses=40)
        best = optimal_edp_point(mixed, config)
        best_value = phase_edp_at(mixed, best, config)
        for point in config.operating_points:
            assert best_value <= phase_edp_at(mixed, point, config) + 1e-18
