"""Profile-guided hot-path access versions (Section 5.2.2 extension)."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, SimMemory
from repro.ir import Prefetch, verify_function
from repro.transform import optimize_module
from repro.transform.access_phase import (
    AccessPhaseOptions,
    BranchProfile,
    generate_access_phase,
    make_profiler,
)

# The guard is true for ~94% of elements: the amplitude gather behind
# it is worth prefetching, but the default simplified CFG drops it.
GUARDED = """
task sweep(flags: i64*, data: f64*, out: f64*, n: i64) {
  var i: i64; var acc: f64;
  acc = 0.0;
  for (i = 0; i < n; i = i + 1) {
    if (flags[i] > 0) {
      acc = acc + data[i];
    }
  }
  out[0] = acc;
}
"""


def build_world(n=64, hot=True):
    memory = SimMemory()
    flag_values = [0 if (i % 16 == 0) == hot else 1 for i in range(n)]
    if hot:
        flag_values = [0 if i % 16 == 0 else 1 for i in range(n)]  # 94% taken
    else:
        flag_values = [1 if i % 16 == 0 else 0 for i in range(n)]  # 6% taken
    flags = memory.alloc_array(8, n, "flags", init=flag_values)
    data = memory.alloc_array(8, n, "data", init=[0.5] * n)
    out = memory.alloc_array(8, 1, "out")
    return memory, [flags, data, out, n]


def generate(hot=True, threshold=0.9):
    module = compile_source(GUARDED)
    optimize_module(module)
    task = module.function("sweep")
    memory, args = build_world(hot=hot)
    options = AccessPhaseOptions(
        profiler=make_profiler(memory, [args]),
    )
    options.skeleton.hot_path_threshold = threshold
    result = generate_access_phase(task, options=options)
    verify_function(result.access)
    return result, memory, args


class TestBranchProfile:
    def test_records_fractions(self):
        profile = BranchProfile()

        class FakeBranch:
            if_true = "T"
            if_false = "F"

        branch = FakeBranch()
        for taken in (True, True, True, False):
            profile.record(branch, taken)
        assert profile.taken_fraction(branch) == pytest.approx(0.75)
        assert profile.hot_successor(branch, 0.7) == "T"
        assert profile.hot_successor(branch, 0.9) is None

    def test_unknown_branch_returns_none(self):
        profile = BranchProfile()
        class FakeBranch:
            pass
        assert profile.taken_fraction(FakeBranch()) is None


class TestHotPathGeneration:
    def test_hot_branch_inlines_guarded_read(self):
        result, memory, args = generate(hot=True)
        assert result.skeleton_stats.hot_paths_taken == 1
        # The data gather behind the hot guard is now prefetched.
        prefetches = [
            i for i in result.access.instructions() if isinstance(i, Prefetch)
        ]
        assert len(prefetches) == 2  # flags[i] and data[i]

    def test_cold_branch_still_simplified(self):
        result, memory, args = generate(hot=False)
        # The hot successor is the *else* side (fall-through), which
        # contains no reads — data[i] is not prefetched.
        prefetches = [
            i for i in result.access.instructions() if isinstance(i, Prefetch)
        ]
        assert len(prefetches) == 1  # only flags[i]

    def test_unbiased_branch_falls_back_to_merge(self):
        module = compile_source(GUARDED)
        optimize_module(module)
        task = module.function("sweep")
        memory = SimMemory()
        n = 64
        flags = memory.alloc_array(8, n, "flags",
                                   init=[i % 2 for i in range(n)])  # 50/50
        data = memory.alloc_array(8, n, "data", init=[0.5] * n)
        out = memory.alloc_array(8, 1, "out")
        args = [flags, data, out, n]
        result = generate_access_phase(task, options=AccessPhaseOptions(
            profiler=make_profiler(memory, [args]),
        ))
        assert result.skeleton_stats.hot_paths_taken == 0

    def test_hot_path_improves_coverage(self):
        default = generate_access_phase(
            _fresh_task(), options=AccessPhaseOptions()
        )
        result, memory, args = generate(hot=True)
        cov_hot = _coverage(result.access, memory, args,
                            _fresh_task_for(result))
        # Fresh world for the default version.
        memory2, args2 = build_world(hot=True)
        cov_default = _coverage(default.access, memory2, args2, default.task)
        assert cov_hot > cov_default

    def test_without_profiler_behavior_unchanged(self):
        module = compile_source(GUARDED)
        optimize_module(module)
        result = generate_access_phase(module.function("sweep"))
        assert result.skeleton_stats.hot_paths_taken == 0


def _fresh_task():
    module = compile_source(GUARDED)
    optimize_module(module)
    return module.function("sweep")


def _fresh_task_for(result):
    return result.task


def _coverage(access, memory, args, task):
    loads, prefetches = set(), set()
    Interpreter(memory, observer=lambda e: prefetches.add(e.address)
                if e.kind == "prefetch" else None).run(access, args)
    Interpreter(memory, observer=lambda e: loads.add(e.address)
                if e.kind == "load" else None).run(task, args)
    return len(loads & prefetches) / max(1, len(loads))
