"""Property-based end-to-end guarantee of access generation.

For randomly generated affine kernels, the compiler-generated access
version must (a) never write memory, and (b) prefetch a superset of the
addresses the execute version loads — the invariant that makes the
access phase a *speculative but complete* prefetcher (Section 5.1).
"""

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.interp import Interpreter, SimMemory
from repro.transform import optimize_module
from repro.transform.access_phase import generate_access_phase

# A random affine kernel template: two nested loops over a 2-D array
# with constant translations and optional triangular inner bound.
KERNEL = """
task k(A: f64*, N: i64, B: i64) {
  var i: i64; var j: i64;
  for (i = 0; i < B; i = i + 1) {
    for (j = %(inner_lo)s; j < B; j = j + 1) {
      A[(i+%(r1)d)*N + j+%(c1)d] = A[(i+%(r1)d)*N + j+%(c1)d]
        + A[(i+%(r2)d)*N + j+%(c2)d] * 0.5;
    }
  }
}
"""


@settings(max_examples=20, deadline=None)
@given(
    r1=st.integers(0, 3), c1=st.integers(0, 3),
    r2=st.integers(0, 3), c2=st.integers(0, 3),
    triangular=st.booleans(),
)
def test_affine_access_version_covers_all_loads(r1, c1, r2, c2, triangular):
    source = KERNEL % {
        "r1": r1, "c1": c1, "r2": r2, "c2": c2,
        "inner_lo": "i" if triangular else "0",
    }
    module = compile_source(source)
    optimize_module(module)
    task = module.function("k")
    result = generate_access_phase(task, module=module)
    assert result.access is not None

    N, B = 12, 5
    memory = SimMemory()
    base = memory.alloc_array(8, N * N, "A", init=[1.0] * (N * N))
    args = [base, N, B]

    loads, prefetches, stores = set(), set(), []

    def watch_task(event):
        if event.kind == "load":
            loads.add(event.address)

    def watch_access(event):
        if event.kind == "prefetch":
            prefetches.add(event.address)
        elif event.kind == "store":
            stores.append(event.address)

    Interpreter(memory, observer=watch_task).run(task, args)
    Interpreter(memory, observer=watch_access).run(result.access, args)

    assert not stores, "access version must never write"
    assert loads <= prefetches, "every loaded address must be prefetched"


GATHER = """
task g(A: i64*, B: f64*, n: i64, stride: i64) {
  var i: i64; var idx: i64;
  for (i = 0; i < n; i = i + %(step)d) {
    idx = A[i];
    if (idx >= 0) {
      B[idx %(extra)s] = B[idx %(extra)s] + 1.0;
    }
  }
}
"""


@settings(max_examples=10, deadline=None)
@given(step=st.integers(1, 3), offset=st.integers(0, 2))
def test_skeleton_never_writes_and_verifies(step, offset):
    """Random non-affine gathers: skeleton is legal and write-free."""
    source = GATHER % {
        "step": step, "extra": "+ %d" % offset if offset else "",
    }
    module = compile_source(source)
    optimize_module(module)
    task = module.function("g")
    result = generate_access_phase(task, module=module)
    assert result.method == "skeleton"

    memory = SimMemory()
    n = 9
    a = memory.alloc_array(8, n + 4, "A", init=[(i * 3) % n for i in range(n + 4)])
    b = memory.alloc_array(8, n + 4, "B", init=[0.0] * (n + 4))
    stores = []
    Interpreter(memory, observer=lambda e: stores.append(e.address)
                if e.kind == "store" else None).run(
        result.access, [a, b, n, step])
    assert not stores
