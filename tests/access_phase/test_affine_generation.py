"""Affine access-phase generation: plans, hull decisions, merging, and
the fundamental coverage guarantee (prefetches ⊇ loads)."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, SimMemory
from repro.ir import Prefetch, Store, verify_function
from repro.transform import optimize_module
from repro.transform.access_phase import (
    AccessPhaseOptions,
    generate_access_phase,
)


def build(source, task_name, options=None):
    module = compile_source(source)
    optimize_module(module)
    task = module.function(task_name)
    result = generate_access_phase(task, module=module, options=options)
    if result.access is not None:
        verify_function(result.access)
    return result, module


def coverage(result, args, alloc):
    """(loads of execute, prefetches of access) address sets."""
    memory = SimMemory()
    concrete = alloc(memory)
    loads, prefetches = set(), set()
    interp = Interpreter(
        memory,
        observer=lambda e: loads.add(e.address) if e.kind == "load" else None,
    )
    interp.run(result.task, concrete)
    interp2 = Interpreter(
        memory,
        observer=lambda e: prefetches.add(e.address)
        if e.kind == "prefetch" else None,
    )
    interp2.run(result.access, concrete)
    return loads, prefetches


LU = """
task lu(A: f64*, N: i64, B: i64) {
  var i: i64; var j: i64; var k: i64;
  for (i = 0; i < B; i = i + 1) {
    for (j = i + 1; j < B; j = j + 1) {
      A[j*N + i] = A[j*N + i] / A[i*N + i];
      for (k = i + 1; k < B; k = k + 1) {
        A[j*N + k] = A[j*N + k] - A[j*N + i] * A[i*N + k];
      }
    }
  }
}
"""


class TestLUGeneration:
    def test_method_is_affine(self):
        result, _ = build(LU, "lu")
        assert result.method == "affine"
        assert result.affine_loops == 1 and result.total_loops == 1

    def test_access_nest_is_shallower(self):
        """Listing 1(c): depth-3 execute loop becomes a depth-2 scan."""
        result, _ = build(LU, "lu")
        (nest,) = result.plan.nests
        assert nest.nest.depth == 2

    def test_full_square_hull_accepted(self):
        result, _ = build(LU, "lu")
        (decision,) = result.plan.hull_decisions
        assert decision["hull"] is True

    def test_no_stores_in_access_version(self):
        result, _ = build(LU, "lu")
        assert not any(
            isinstance(i, Store) for i in result.access.instructions()
        )

    def test_coverage_exact(self):
        result, _ = build(LU, "lu")
        loads, prefetches = coverage(
            result, None,
            lambda m: [m.alloc_array(8, 64, "A",
                                     init=[1.0 + i for i in range(64)]), 8, 6],
        )
        assert loads == prefetches  # square hull == touched set for LU

    def test_access_does_not_write(self):
        result, _ = build(LU, "lu")
        memory = SimMemory()
        base = memory.alloc_array(8, 64, "A", init=[float(i) for i in range(64)])
        snapshot = dict(memory._cells)
        Interpreter(memory).run(result.access, [base, 8, 6])
        assert memory._cells == snapshot


TWO_ARRAYS = """
task two(A: f64*, D: f64*, N: i64, B: i64) {
  var i: i64; var j: i64; var k: i64;
  for (i = 0; i < B; i = i + 1) {
    for (j = 0; j < B; j = j + 1) {
      for (k = 0; k < B; k = k + 1) {
        A[i*N + k] = A[i*N + k] - D[i*N + j] * A[j*N + k];
      }
    }
  }
}
"""


class TestClassesAndMerging:
    def test_two_arrays_two_classes(self):
        result, _ = build(TWO_ARRAYS, "two")
        bases = {spec.base.name for nest in result.plan.nests
                 for spec in nest.prefetches}
        assert bases == {"A", "D"}

    def test_equal_extent_nests_merged(self):
        """Listing 2(b): one nest prefetches both arrays."""
        result, _ = build(TWO_ARRAYS, "two")
        assert len(result.plan.nests) == 1
        assert result.plan.merged >= 1

    def test_merge_can_be_disabled(self):
        result, _ = build(
            TWO_ARRAYS, "two", AccessPhaseOptions(merge_nests=False)
        )
        assert len(result.plan.nests) == 2

    def test_coverage_both_arrays(self):
        result, _ = build(TWO_ARRAYS, "two")

        def alloc(m):
            a = m.alloc_array(8, 64, "A", init=[1.0] * 64)
            d = m.alloc_array(8, 64, "D", init=[0.5] * 64)
            return [a, d, 8, 6]

        loads, prefetches = coverage(result, None, alloc)
        assert loads <= prefetches


BLOCKS = """
task blocks(A: f64*, N: i64, B: i64, Ax: i64, Ay: i64, Dx: i64, Dy: i64) {
  var i: i64; var j: i64; var k: i64;
  for (i = 0; i < B; i = i + 1) {
    for (j = i + 1; j < B; j = j + 1) {
      for (k = i + 1; k < B; k = k + 1) {
        A[(Ax+j)*N + Ay+k] = A[(Ax+j)*N + Ay+k]
                           - A[(Dx+j)*N + Dy+i] * A[(Ax+i)*N + Ay+k];
      }
    }
  }
}
"""


class TestBlockClasses:
    def test_blocks_separate_into_two_classes(self):
        """Listing 3: classA (Ax, Ay) and classD (Dx, Dy)."""
        result, _ = build(BLOCKS, "blocks")
        keys = set()
        for nest in result.plan.nests:
            for spec in nest.prefetches:
                keys.add(frozenset(
                    sym for term in spec.index.terms
                    for sym in ([term.scan_var] if term.scan_var else [])
                ))
        assert result.method == "affine"
        assert len(result.plan.hull_decisions) == 2

    def test_no_dead_space_prefetched(self):
        result, _ = build(BLOCKS, "blocks")
        N, B = 24, 5
        params = dict(N=N, B=B, Ax=0, Ay=12, Dx=12, Dy=0)

        def alloc(m):
            base = m.alloc_array(8, N * N, "A", init=[1.0] * (N * N))
            alloc.base = base
            return [base, N, B, params["Ax"], params["Ay"],
                    params["Dx"], params["Dy"]]

        loads, prefetches = coverage(result, None, alloc)
        assert loads <= prefetches
        # Nothing outside the two B x B blocks may be prefetched.
        for addr in prefetches:
            idx = (addr - alloc.base) // 8
            r, c = divmod(idx, N)
            in_a = 0 <= r < B and 12 <= c < 12 + B
            in_d = 12 <= r < 12 + B and 0 <= c < B
            assert in_a or in_d


class TestHullRejection:
    DISJOINT = """
    task disjoint(A: f64*, n: i64) {
      var i: i64;
      for (i = 0; i < n; i = i + 1) {
        A[i] = A[i] + A[i + 100000];
      }
    }
    """

    def test_far_apart_accesses_not_hulled(self):
        result, _ = build(self.DISJOINT, "disjoint")
        (decision,) = result.plan.hull_decisions
        assert decision["hull"] is False
        # The two exact per-access nests have identical extents, so the
        # merge step still fuses them into one nest with two prefetches.
        specs = [s for nest in result.plan.nests for s in nest.prefetches]
        assert len(specs) == 2

    def test_threshold_can_force_hull(self):
        result, _ = build(
            self.DISJOINT, "disjoint",
            AccessPhaseOptions(hull_threshold=10 ** 7),
        )
        (decision,) = result.plan.hull_decisions
        assert decision["hull"] is True

    # Two translated triangles whose overlap appears/disappears with
    # (N, B): the union count is piecewise polynomial, so Ehrhart
    # interpolation cannot fit one closed form.  The hull test must
    # report "inconclusive" and scan per-polytope instead of raising.
    CHAMBERED = """
    task chambered(A: f64*, N: i64, B: i64) {
      var i: i64; var j: i64;
      for (i = 0; i < B; i = i + 1) {
        for (j = i; j < B; j = j + 1) {
          A[(i+2)*N + j] = A[(i+2)*N + j] + A[i*N + j+3] * 0.5;
        }
      }
    }
    """

    def test_chambered_union_count_bails_to_per_polytope(self):
        result, _ = build(self.CHAMBERED, "chambered")
        assert result.method == "affine"
        bails = [
            d for d in result.plan.hull_decisions
            if d.get("reason") == "count is chambered; hull test inconclusive"
        ]
        assert bails and all(d["hull"] is False for d in bails)

        loads, prefetches = coverage(
            result, None,
            lambda memory: [
                memory.alloc_array(8, 144, "A", init=[1.0] * 144), 12, 5,
            ],
        )
        assert loads <= prefetches


class TestPrefetchDedup:
    def test_duplicate_addresses_emitted_once(self):
        src = """
        task dup(A: f64*, n: i64) {
          var i: i64;
          for (i = 0; i < n; i = i + 1) {
            A[i] = A[i] * A[i] + A[i];
          }
        }
        """
        result, _ = build(src, "dup")
        prefetches = [
            i for i in result.access.instructions() if isinstance(i, Prefetch)
        ]
        assert len(prefetches) == 1
