"""Skeleton (non-affine) access generation: slicing, CFG simplification,
prefetch insertion, legality bail-outs, line dedupe."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, SimMemory
from repro.ir import Call, CondBr, Load, Prefetch, Store, verify_function
from repro.transform import optimize_module
from repro.transform.access_phase import (
    AccessPhaseOptions,
    SkeletonOptions,
    generate_access_phase,
)
from tests.conftest import POINTER_CHASE


def build(source, task_name, options=None):
    module = compile_source(source)
    optimize_module(module)
    task = module.function(task_name)
    result = generate_access_phase(task, module=module, options=options)
    if result.access is not None:
        verify_function(result.access)
    return result


class TestPointerChase:
    def test_method_is_skeleton(self):
        result = build(POINTER_CHASE, "chase")
        assert result.method == "skeleton"

    def test_chain_load_kept_conditional_dropped(self):
        result = build(POINTER_CHASE, "chase")
        loads = [i for i in result.access.instructions()
                 if isinstance(i, Load)]
        # head + next[p] loads survive (addresses); data loads do not.
        assert 1 <= len(loads) <= 2
        conds = [i for i in result.access.instructions()
                 if isinstance(i, CondBr)]
        assert len(conds) == 1  # only the while-loop control remains

    def test_no_stores_in_skeleton(self):
        result = build(POINTER_CHASE, "chase")
        assert not any(
            isinstance(i, Store) for i in result.access.instructions()
        )

    def test_full_chain_coverage(self):
        result = build(POINTER_CHASE, "chase")
        memory = SimMemory()
        n = 12
        head = memory.alloc_array(8, 1, "head", init=[0])
        nxt = memory.alloc_array(
            8, n, "next", init=[i + 1 for i in range(n - 1)] + [-1]
        )
        data = memory.alloc_array(8, n, "data", init=[0.3 * i for i in range(n)])
        loads, prefetches = set(), set()
        Interpreter(memory, observer=lambda e: loads.add(e.address)
                    if e.kind == "load" else None).run(
            result.task, [head, nxt, data, n])
        Interpreter(memory, observer=lambda e: prefetches.add(e.address)
                    if e.kind == "prefetch" else None).run(
            result.access, [head, nxt, data, n])
        assert loads <= prefetches


class TestCFGSimplification:
    GUARDED = """
    task guarded(A: f64*, B: f64*, n: i64) {
      var i: i64;
      for (i = 0; i < n; i = i + 1) {
        if (A[i] > 0.5) {
          B[i] = A[i] * 2.0;
        }
      }
    }
    """

    def test_conditional_removed_by_default(self):
        result = build(self.GUARDED, "guarded")
        conds = [i for i in result.access.instructions()
                 if isinstance(i, CondBr)]
        assert len(conds) == 1  # only the loop header
        assert result.skeleton_stats.conditionals_removed == 1

    def test_guaranteed_reads_still_prefetched(self):
        result = build(self.GUARDED, "guarded")
        prefetches = [i for i in result.access.instructions()
                      if isinstance(i, Prefetch)]
        assert prefetches  # A[i] is read unconditionally (the guard)

    def test_keep_conditionals_option(self):
        result = build(
            self.GUARDED, "guarded",
            AccessPhaseOptions(
                force_method="skeleton",
                skeleton=SkeletonOptions(keep_conditionals=True),
            ),
        )
        conds = [i for i in result.access.instructions()
                 if isinstance(i, CondBr)]
        assert len(conds) == 2  # loop header + data-dependent branch
        assert result.skeleton_stats.conditionals_removed == 0


class TestLegality:
    def test_non_inlinable_call_bails(self):
        src = (
            "func helper(A: f64*, i: i64) -> f64 { return A[i]; }"
            "task t(A: f64*, n: i64) { var i: i64;"
            " for (i = 0; i < n; i = i + 1) { A[i] = helper(A, i); } }"
        )
        module = compile_source(src)
        optimize_module(module)
        module.function("helper").no_inline = True
        result = generate_access_phase(module.function("t"), module=module)
        assert result.method == "none"
        assert result.access is None
        assert "non-inlinable" in result.reason

    def test_inlinable_call_proceeds(self):
        src = (
            "func helper(A: f64*, i: i64) -> f64 { return A[i]; }"
            "task t(A: f64*, n: i64) { var i: i64;"
            " for (i = 0; i < n; i = i + 1) { A[i] = helper(A, i) + 1.0; } }"
        )
        result = build(src, "t")
        assert result.access is not None
        assert not any(
            isinstance(i, Call) for i in result.access.instructions()
        )

    def test_store_alias_warning(self):
        result = build(POINTER_CHASE, "chase")
        assert any("speculative" in w
                   for w in result.skeleton_stats.warnings)


class TestLineDedupe:
    RECORDS = """
    task rec(state: i64*, amp: f64*, n: i64) {
      var i: i64; var s: i64;
      for (i = 0; i < n; i = i + 1) {
        s = state[4*i];
        amp[4*i] = amp[4*i] * 0.5 + amp[4*i + 1];
      }
    }
    """

    def test_same_line_prefetches_dropped(self):
        base = build(
            self.RECORDS, "rec",
            AccessPhaseOptions(force_method="skeleton"),
        )
        deduped = build(
            self.RECORDS, "rec",
            AccessPhaseOptions(
                force_method="skeleton",
                skeleton=SkeletonOptions(line_dedupe=True),
            ),
        )
        count = lambda r: sum(
            1 for i in r.access.instructions() if isinstance(i, Prefetch)
        )
        assert count(deduped) < count(base)
        assert deduped.skeleton_stats.line_deduped >= 1


class TestPrefetchStoresAblation:
    STORE_HEAVY = """
    task wr(A: f64*, B: f64*, n: i64) {
      var i: i64;
      for (i = 0; i < n; i = i + 1) {
        B[i] = A[i] + 1.0;
      }
    }
    """

    def test_store_addresses_optionally_prefetched(self):
        without = build(self.STORE_HEAVY, "wr")
        with_stores = build(
            self.STORE_HEAVY, "wr",
            AccessPhaseOptions(
                force_method="skeleton",
                skeleton=SkeletonOptions(prefetch_stores=True),
            ),
        )
        count = lambda r: sum(
            1 for i in r.access.instructions() if isinstance(i, Prefetch)
        )
        assert count(with_stores) > count(without)
