"""Delinearization and bridge-form tests."""

import pytest

from repro.analysis import AccessAnalysis, LoopInfo, ScalarEvolution
from repro.frontend import compile_source
from repro.ir import GEP
from repro.transform import optimize_function
from repro.transform.access_phase import (
    DelinearizeError,
    FormError,
    IndexForm,
    SymbolTable,
    delinearize,
    linear_to_affine,
)
from repro.polyhedral import AffineExpr


def index_expr(source, task="t"):
    module = compile_source(source)
    func = module.function(task)
    optimize_function(func)
    analysis = AccessAnalysis(func)
    access = analysis.real_accesses()[0]
    return access.index, analysis


class Test1D:
    def test_flat_index(self):
        index, _ = index_expr(
            "task t(A: f64*, n: i64) { var i: i64;"
            " for (i = 0; i < n; i = i + 1) { A[i] = 0.0; } }"
        )
        result = delinearize(index)
        assert result.depth == 1
        assert result.strides == [()]

    def test_offset_index(self):
        index, _ = index_expr(
            "task t(A: f64*, n: i64, off: i64) { var i: i64;"
            " for (i = 0; i < n; i = i + 1) { A[i + off] = 0.0; } }"
        )
        result = delinearize(index)
        assert result.depth == 1


class Test2D:
    def test_row_major(self):
        index, _ = index_expr(
            "task t(A: f64*, N: i64, B: i64) { var i: i64; var j: i64;"
            " for (i = 0; i < B; i = i + 1) {"
            "  for (j = 0; j < B; j = j + 1) { A[i*N + j] = 0.0; } } }"
        )
        result = delinearize(index)
        assert result.depth == 2
        assert len(result.strides[0]) == 1  # N
        assert result.strides[1] == ()
        assert result.assumptions  # 0 <= j < N recorded

    def test_block_offsets_split_correctly(self):
        index, _ = index_expr(
            "task t(A: f64*, N: i64, B: i64, Ax: i64, Ay: i64) {"
            " var i: i64; var j: i64;"
            " for (i = 0; i < B; i = i + 1) {"
            "  for (j = 0; j < B; j = j + 1) {"
            "   A[(Ax+i)*N + Ay+j] = 0.0; } } }"
        )
        result = delinearize(index)
        assert result.depth == 2
        outer, inner = result.subscripts
        outer_params = {p.name for p in outer.parameters()}
        inner_params = {p.name for p in inner.parameters()}
        assert outer_params == {"Ax"}
        assert inner_params == {"Ay"}


class Test3D:
    def test_three_level_strides(self):
        index, _ = index_expr(
            "task t(A: f64*, N: i64, M: i64, B: i64) {"
            " var i: i64; var j: i64; var k: i64;"
            " for (i = 0; i < B; i = i + 1) {"
            "  for (j = 0; j < B; j = j + 1) {"
            "   for (k = 0; k < B; k = k + 1) {"
            "    A[i*N*M + j*M + k] = 0.0; } } } }"
        )
        result = delinearize(index)
        assert result.depth == 3
        stride_sizes = [len(s) for s in result.strides]
        assert stride_sizes == [2, 1, 0]


class TestFailures:
    def test_iv_product_fails(self):
        from repro.analysis.scalar_evolution import LinearExpr
        # craft i*j-like nonlinearity: multiply returns None upstream, so
        # delinearize never sees it; instead test an unfactorable mix.
        index, _ = index_expr(
            "task t(A: f64*, N: i64, M: i64, B: i64) {"
            " var i: i64; var j: i64;"
            " for (i = 0; i < B; i = i + 1) {"
            "  for (j = 0; j < B; j = j + 1) {"
            "   A[i*N + j*M] = 0.0; } } }"
        )
        with pytest.raises(DelinearizeError):
            delinearize(index)


class TestSymbolTable:
    def test_param_names_stable(self):
        _, analysis = index_expr(
            "task t(A: f64*, n: i64) { var i: i64;"
            " for (i = 0; i < n; i = i + 1) { A[i] = 0.0; } }"
        )
        table = SymbolTable()
        n = analysis.func.arg_named("n")
        assert table.param_name(n) == "n"
        assert table.param_value("n") is n

    def test_iv_names_unique(self):
        table = SymbolTable()
        from repro.ir import Phi, I64
        a, b = Phi(I64), Phi(I64)
        assert table.iv_name(a) != table.iv_name(b)
        assert table.iv_name(a) == table.iv_name(a)


class TestIndexForm:
    def test_from_subscripts_relinearizes(self):
        subs = [AffineExpr.symbol("x"), AffineExpr.symbol("y") + 2]
        form = IndexForm.from_subscripts(subs, [("N",), ()])
        assert form.evaluate({"x": 3, "y": 4, "N": 10}) == 36

    def test_canonical_combines_terms(self):
        a = IndexForm.from_subscripts([AffineExpr.symbol("x")], [()])
        b = IndexForm.from_subscripts([AffineExpr.symbol("x")], [()])
        assert a.canonical() == b.canonical()

    def test_fractional_coefficient_rejected(self):
        from fractions import Fraction
        subs = [AffineExpr({"x": Fraction(1, 2)})]
        with pytest.raises(FormError):
            IndexForm.from_subscripts(subs, [()])


class TestLinearToAffine:
    def test_rejects_param_coefficient_on_iv(self):
        index, analysis = index_expr(
            "task t(A: f64*, N: i64, B: i64) { var i: i64;"
            " for (i = 0; i < B; i = i + 1) { A[i*N] = 0.0; } }"
        )
        with pytest.raises(FormError):
            linear_to_affine(index, SymbolTable())
