"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy setuptools editable install
through this file when PEP 517 build isolation is unavailable (offline
environments); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
